// Client-side runtime: executes every rank's I/O program against the
// simulated file system, honoring all 13 tunable parameters.
//
// Mechanisms (each maps to a manual-documented Lustre behaviour):
//  - striping via FileLayout (lov.stripe_count / stripe_size)
//  - write-back caching with per-(node,OST) dirty budgets (osc.max_dirty_mb)
//  - RPC formation: pending dirty segments are coalesced into bulk RPCs of
//    at most osc.max_pages_per_rpc pages
//  - per-(node,OST) in-flight caps (osc.max_rpcs_in_flight)
//  - sliding-window readahead (pfs/readahead.hpp): per-fd window state
//    machine with growth on sequential hits, shrink/reset on misses,
//    RPC-aligned prefetch edges, whole-file mode for small files, and a
//    per-node budget arbitrating across files (llite.max_read_ahead_*)
//  - metadata RPCs through per-node caps (mdc.max_rpcs_in_flight /
//    max_mod_rpcs_in_flight) to the MDS model
//  - stat-ahead pipelining of directory stat scans (llite.statahead_max)
//  - DLM lock caching (ldlm.lru_size / lru_max_age): a cached inode lock
//    makes re-stat/re-open local and keeps written pages usable as page
//    cache for private files
//  - extent-lock conflicts on shared-file writes (fixed model, see
//    DESIGN.md)
//
// Hot per-(node,OST) state — dirty budgets, RPC caps, pending segment
// queues — lives in struct-of-arrays banks indexed by the dense lane id
// node * totalOsts + ost, so a datacenter-scale runtime costs flat vectors
// instead of a heap object per pair. All randomness draws from streams
// keyed by (run seed, global component id), never from the engine: results
// are invariant under how federated cells are grouped onto engine shards.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "pfs/client_cache.hpp"
#include "pfs/job.hpp"
#include "pfs/layout.hpp"
#include "pfs/mds.hpp"
#include "pfs/ost.hpp"
#include "pfs/params.hpp"
#include "pfs/readahead.hpp"
#include "pfs/topology.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/flow_limiter.hpp"
#include "sim/service_center.hpp"

namespace stellar::faults {
class FaultInjector;
}

namespace stellar::pfs {

/// Per-file counters accumulated during a run (Darshan's source data).
struct FileStats {
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::uint32_t readOps = 0;
  std::uint32_t writeOps = 0;
  std::uint32_t seqReads = 0;
  std::uint32_t seqWrites = 0;
  std::uint32_t opens = 0;
  std::uint32_t creates = 0;
  std::uint32_t stats = 0;
  std::uint32_t unlinks = 0;
  std::uint32_t fsyncs = 0;
  std::uint32_t closes = 0;
  std::uint64_t minAccess = ~std::uint64_t{0};
  std::uint64_t maxAccess = 0;
  std::uint64_t maxOffset = 0;   ///< high-water mark => file size
  std::uint64_t rankMask = 0;    ///< bitmask of ranks that touched the file

  /// Top-4 distinct access sizes with counts (Darshan's ACCESS1..4);
  /// fixed-size to stay allocation-free across hundreds of thousands of
  /// files. Saturating: a 5th distinct size replaces the rarest slot.
  std::array<std::uint64_t, 4> accessSize{};
  std::array<std::uint32_t, 4> accessCount{};

  void recordAccess(std::uint64_t size) noexcept {
    std::size_t weakest = 0;
    for (std::size_t i = 0; i < accessSize.size(); ++i) {
      if (accessSize[i] == size) {
        ++accessCount[i];
        return;
      }
      if (accessCount[i] == 0) {
        accessSize[i] = size;
        accessCount[i] = 1;
        return;
      }
      if (accessCount[i] < accessCount[weakest]) {
        weakest = i;
      }
    }
    accessSize[weakest] = size;
    accessCount[weakest] = 1;
  }

  /// Most frequent access size (0 if no I/O).
  [[nodiscard]] std::uint64_t commonAccessSize() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < accessSize.size(); ++i) {
      if (accessCount[i] > accessCount[best]) {
        best = i;
      }
    }
    return accessCount[best] == 0 ? 0 : accessSize[best];
  }
  double readTime = 0.0;         ///< rank-blocked time attributed to reads
  double writeTime = 0.0;
  double metaTime = 0.0;
};

/// Per-rank counters.
struct RankStats {
  double finishTime = 0.0;
  double readTime = 0.0;
  double writeTime = 0.0;
  double metaTime = 0.0;
  double computeTime = 0.0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
};

/// Whole-run counters beyond per-file/per-rank stats.
struct RunCounters {
  std::uint64_t dataRpcs = 0;
  std::uint64_t metaRpcs = 0;
  std::uint64_t lockHits = 0;
  std::uint64_t lockMisses = 0;
  std::uint64_t readaheadHitBytes = 0;
  std::uint64_t readaheadMissBytes = 0;
  std::uint64_t pageCacheHitBytes = 0;
  std::uint64_t stataheadServed = 0;
  std::uint64_t extentConflicts = 0;
  std::uint64_t events = 0;
  /// RPC resilience counters; nonzero only when a fault plan is active.
  std::uint64_t rpcTimeouts = 0;
  std::uint64_t rpcRetries = 0;
  std::uint64_t rpcGaveUp = 0;
  /// Byte-conservation bookkeeping (consumed by src/testkit's invariant
  /// checker): payload bytes carried by issued bulk RPCs, and dirty bytes
  /// discarded without a flush because their file was unlinked first.
  std::uint64_t writeRpcBytes = 0;
  std::uint64_t readRpcBytes = 0;
  std::uint64_t dirtyDiscardedBytes = 0;
};

/// Per-OST slice of a run's server-side accounting.
struct OstAudit {
  std::uint64_t rpcsServed = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t seeks = 0;
  double positioningBusySeconds = 0.0;
  double transferBusySeconds = 0.0;
  std::size_t peakQueue = 0;
};

/// End-of-run snapshot of internal state the invariant checker needs but
/// the tuning loop does not: server byte splits, cache high-water marks,
/// and lock lifecycle balances. Cheap to collect (a few scalars per OST /
/// node), so PfsSimulator gathers it unconditionally.
struct RunAudit {
  std::vector<OstAudit> osts;
  /// Max over all (node, OST) dirty lanes.
  std::uint64_t peakDirtyBytes = 0;
  std::uint64_t maxDirtyReservationBytes = 0;
  /// Per-(node,OST) budget implied by osc_max_dirty_mb at run time.
  std::uint64_t dirtyBudgetBytes = 0;
  /// Summed over all nodes' DLM lock LRUs; inserts == evictions + resident.
  std::uint64_t lockInserts = 0;
  std::uint64_t lockEvictions = 0;
  std::uint64_t lockResident = 0;
  std::uint64_t mdsOps = 0;
  double mdsBusySeconds = 0.0;
  /// Readahead window machine activity plus the fate of every prefetched
  /// byte. INV-READA pins the exact conservation law
  /// prefetched == consumed + discarded + resident on every run.
  std::uint64_t readaWindowsOpened = 0;
  std::uint64_t readaWindowsGrown = 0;
  std::uint64_t readaWindowsReset = 0;
  std::uint64_t readaPrefetchedBytes = 0;
  std::uint64_t readaConsumedBytes = 0;
  std::uint64_t readaDiscardedBytes = 0;
  std::uint64_t readaResidentBytes = 0;
};

/// Placement of one runtime inside a (possibly federated) run: the run's
/// seed plus this runtime's global node/OST id offsets. Random streams and
/// fault targeting key off global ids, so a cell simulates identically no
/// matter which engine shard hosts it.
struct RunScope {
  std::uint64_t runSeed = 0;
  std::uint32_t nodeOffset = 0;
  std::uint32_t ostOffset = 0;
};

class ClientRuntime {
 public:
  /// `tracer` (nullable, non-owning) receives per-RPC and lock-wait
  /// events while enabled; aggregate metrics flow through
  /// flushObservability at end of run. `faults` (nullable, non-owning)
  /// is the armed fault injector for this run: when attached, every RPC
  /// delivery consults it for loss/stall state and lost deliveries retry
  /// with exponential backoff under the NetworkSpec retry budget.
  ClientRuntime(sim::SimEngine& engine, const ClusterSpec& cluster,
                const PfsConfig& config, const JobSpec& job,
                obs::Tracer* tracer = nullptr,
                const faults::FaultInjector* faults = nullptr,
                RunScope scope = {});
  ~ClientRuntime();

  ClientRuntime(const ClientRuntime&) = delete;
  ClientRuntime& operator=(const ClientRuntime&) = delete;

  /// Schedules every rank's program at t=0. Call engine.run() afterwards.
  void start();

  [[nodiscard]] bool allRanksDone() const noexcept { return doneRanks_ == ranks_.size(); }

  /// True once any RPC exhausted its retry budget. The run still drains
  /// (give-up completes the RPC so resources release and ranks finish),
  /// but its results must be treated as unusable.
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] const std::string& failureReason() const noexcept {
    return failureReason_;
  }
  [[nodiscard]] const std::vector<FileStats>& fileStats() const noexcept { return fileStats_; }
  [[nodiscard]] const std::vector<RankStats>& rankStats() const noexcept { return rankStats_; }
  [[nodiscard]] const RunCounters& counters() const noexcept { return counters_; }

  /// Simulated time at which each global barrier released, in order.
  /// Multi-phase workloads (IO500, MDWorkbench rounds) separate their
  /// phases with barriers, so consecutive differences are phase durations.
  [[nodiscard]] const std::vector<double>& barrierTimes() const noexcept {
    return barrierTimes_;
  }

  /// Flushes this run's aggregate metrics into `registry`: the RunCounters
  /// totals, the DLM lock-wait time, and the per-OST service split
  /// (positioning/seek time vs media transfer time, RPCs, peak queue
  /// depth). Called by PfsSimulator::run after the event queue drains.
  void flushObservability(obs::CounterRegistry& registry) const;

  /// Collects the end-of-run audit snapshot (see RunAudit). Call after the
  /// event queue drains; earlier snapshots see in-flight state.
  [[nodiscard]] RunAudit audit() const;

 private:
  // ---- internal state ----------------------------------------------------
  struct FdState {
    bool open = false;
    bool everRead = false;
    std::uint64_t lastReadEnd = 0;
    std::uint64_t lastWriteEnd = 0;
    ReadaWindow ra;  ///< sliding readahead window (pfs/readahead.hpp)
  };

  struct StataheadScan {
    std::size_t nextToIssue = 0;
    std::size_t endIndex = 0;  ///< exclusive op index
    std::uint32_t inFlight = 0;
  };

  struct RankState {
    RankId id = 0;
    std::uint32_t node = 0;
    std::size_t ip = 0;            ///< instruction pointer into program
    std::size_t segIndex = 0;      ///< progress within current op's extents
    std::vector<ObjectExtent> segments;
    bool segmentsValid = false;
    /// Set when a dirty-space waiter admitted the current segment's
    /// reservation; execWrite must consume it without re-reserving.
    bool reservedSegment = false;
    double accrued = 0.0;          ///< local CPU time not yet spent
    std::uint32_t pendingWaits = 0;///< outstanding completions blocking us
    double blockStart = 0.0;
    OpKind blockKind = OpKind::Barrier;
    bool done = false;
    std::unordered_map<FileId, FdState> fds;
    // statahead: op index -> ready?  (absent = not issued)
    std::unordered_map<std::size_t, bool> statEntries;
    std::optional<StataheadScan> scan;
    std::optional<std::size_t> waitingOnStat;
  };

  /// Per-node state that is genuinely per node (not per node x OST): the
  /// NIC, metadata caps, lock LRU, readahead store, and file bookkeeping.
  struct NodeState {
    std::unique_ptr<sim::ServiceCenter> nic;
    std::unique_ptr<sim::FlowLimiter> mdcLimiter;
    std::unique_ptr<sim::FlowLimiter> modLimiter;
    LockLru locks;
    ReadAheadCache readahead;
    /// Ordered maps, not unordered: fsync completion drains waiters per
    /// file, and any future whole-map drain (close-all, unlink sweeps)
    /// must visit files in FileId order for bit-identical replay
    /// (stellar-lint DET-UNORDERED-ITER; pinned by the ML-DET law).
    std::map<FileId, std::uint32_t> flushInFlight;
    std::map<FileId, std::vector<std::function<void()>>> fsyncWaiters;
    std::unordered_map<FileId, std::uint32_t> openCount;  // open FDs on node
    /// Files whose written pages are still cached on this node. Set on
    /// write; cleared when the protecting DLM lock leaves the LRU (via
    /// the eviction handler) or on unlink.
    std::unordered_set<FileId> pageValid;
  };

  struct FileState {
    FileLayout layout;
    bool exists = false;
    std::uint64_t size = 0;
    std::uint64_t writerNodeMask = 0;
  };

  /// Dense lane id for per-(node,OST) banks.
  [[nodiscard]] std::size_t lane(std::uint32_t node, std::uint32_t ost) const noexcept {
    return static_cast<std::size_t>(node) * totalOsts_ + ost;
  }

  // ---- execution ---------------------------------------------------------
  void advance(RankState& rank);
  void blockRank(RankState& rank, OpKind kind);
  void resumeRank(RankState& rank);
  void completeOneWait(RankState& rank);
  void rankFinished(RankState& rank);

  /// True if the op was fully handled locally (advance continues the
  /// loop); false if the rank blocked.
  bool execMeta(RankState& rank, const IoOp& op);
  bool execWrite(RankState& rank, const IoOp& op);
  bool execRead(RankState& rank, const IoOp& op);
  bool execStat(RankState& rank, const IoOp& op);
  void execCloseLocal(RankState& rank, const IoOp& op);

  // statahead helpers
  void maybeStartScan(RankState& rank);
  void pumpStatahead(RankState& rank);

  // metadata plumbing
  void submitMeta(std::uint32_t node, MetaOpKind kind, std::uint32_t stripeCount,
                  bool modifying, std::function<void()> onDone);

  // ---- fault-aware RPC delivery ------------------------------------------
  /// One retryable RPC: `deliver` performs a single delivery attempt
  /// (request trip + service + reply trip) and must invoke its argument
  /// when served; `complete` releases client-side resources and resumes
  /// waiters. With no injector attached, deliverRpc degenerates to
  /// deliver(complete) — same event sequence as the pre-fault code.
  struct RpcDelivery {
    std::int32_t ost = -1;  ///< target *global* OST id, or -1 for the MDS
    std::uint32_t attempt = 0;
    std::function<void(sim::Callback)> deliver;
    sim::Callback complete;
  };
  /// Iterative retry loop: lost attempts (outage window or sampled drop)
  /// wait rpcTimeout plus exponential backoff and redeliver; after
  /// rpcMaxRetries the run fails but `complete` still runs so the
  /// simulation drains instead of deadlocking.
  void deliverRpc(RpcDelivery d);
  void failRun(std::string reason);

  // data plumbing
  [[nodiscard]] std::uint64_t rpcBytes() const noexcept;
  void acceptWriteSegment(RankState& rank, FileId file, const ObjectExtent& seg);
  void flushPending(std::uint32_t node, std::uint32_t ost, FileId onlyFile = kInvalidFile);
  void flushAllNodes();
  void issueWriteRpc(std::uint32_t node, std::uint32_t ost, FileId file,
                     std::uint64_t objectOffset, std::uint64_t bytes);
  void issueReadRpc(std::uint32_t node, std::uint32_t ost, FileId file,
                    std::uint64_t objectOffset, std::uint64_t bytes,
                    std::function<void()> onDone);

  // readahead
  void prefetchRange(RankState& rank, FileId file, std::uint64_t begin, std::uint64_t end);

  // lock / page-cache
  [[nodiscard]] bool lockCached(std::uint32_t node, FileId file);
  void cacheLock(std::uint32_t node, FileId file);
  /// Accounts one DLM lock acquisition wait (simulated seconds).
  void noteLockWait(double seconds);

  [[nodiscard]] FileLayout makeLayout(FileId file) const;

  sim::SimEngine& engine_;
  const ClusterSpec& cluster_;
  PfsConfig config_;
  const JobSpec& job_;
  obs::Tracer* tracer_ = nullptr;
  const faults::FaultInjector* faults_ = nullptr;
  /// tracer_ enabled state, latched at construction: per-RPC sites test a
  /// plain bool (same cost as the detached null check) instead of paying
  /// an atomic load 50k+ times per run.
  bool traceOn_ = false;
  RunScope scope_;
  std::uint32_t totalOsts_ = 0;

  OstBank osts_;
  MdsModel mds_;
  /// Per-(node,OST) osc.max_rpcs_in_flight caps, lane-indexed.
  sim::FlowLimiterBank oscFlow_;
  /// Per-(node,OST) osc.max_dirty_mb budgets, lane-indexed.
  DirtyBank dirty_;
  /// Pending dirty segments awaiting RPC formation, lane-indexed.
  WritebackBank writeback_;
  /// Per-node streams for extent-conflict sampling, keyed by (run seed,
  /// global node id).
  std::vector<util::Rng> nodeRng_;

  std::vector<NodeState> nodes_;
  std::vector<RankState> ranks_;
  std::vector<FileState> files_;

  std::vector<FileStats> fileStats_;
  std::vector<RankStats> rankStats_;
  RunCounters counters_;

  /// Knob snapshot the readahead window machine decides against, resolved
  /// once at construction.
  ReadaheadKnobs readaKnobs_;
  /// Window machine event tallies (RunAudit / pfs.reada.*).
  std::uint64_t readaOpened_ = 0;
  std::uint64_t readaGrown_ = 0;
  std::uint64_t readaReset_ = 0;

  std::uint32_t barrierArrived_ = 0;
  std::uint32_t doneRanks_ = 0;
  std::vector<double> barrierTimes_;

  /// DLM lock acquisition waits (simulated seconds), accumulated where a
  /// lock miss blocks a rank; flushed as a histogram.
  double lockWaitSeconds_ = 0.0;
  std::uint64_t lockWaits_ = 0;

  bool failed_ = false;
  std::string failureReason_;
};

}  // namespace stellar::pfs

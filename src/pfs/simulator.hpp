// PfsSimulator: the run(job, config, seed) facade the rest of the system
// (tuning engine, baselines, benches) uses. One call simulates a complete
// application execution on a freshly mounted file system — the paper's
// between-runs hygiene (delete data, drop caches, remount, settle) is
// implicit because every run constructs fresh state.
#pragma once

#include <cstdint>
#include <utility>

#include "faults/fault_plan.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "pfs/client.hpp"
#include "pfs/job.hpp"
#include "pfs/params.hpp"
#include "pfs/topology.hpp"
#include "sim/engine.hpp"

namespace stellar::pfs {

/// How a run ended. Anything but Ok means wallSeconds is not a valid
/// measurement of the configuration (the paper's bad-signal case the
/// tuning loop must survive).
enum class RunOutcome : std::uint8_t {
  Ok,        ///< application finished normally
  Failed,    ///< an RPC exhausted its retry budget mid-run
  TimedOut,  ///< simulated-time cap hit with ranks still running
};

[[nodiscard]] const char* runOutcomeName(RunOutcome outcome) noexcept;

/// Everything a run produces. `wallSeconds` includes the multiplicative
/// run-to-run noise; `rawWallSeconds` is the noise-free simulated time
/// (useful for calibration tests).
struct RunResult {
  double wallSeconds = 0.0;
  double rawWallSeconds = 0.0;
  std::vector<FileStats> files;
  std::vector<RankStats> ranks;
  RunCounters counters;
  /// Release time of each global barrier: consecutive differences are the
  /// durations of a multi-phase workload's phases (IO500-style reporting).
  std::vector<double> barrierTimes;
  RunOutcome outcome = RunOutcome::Ok;
  /// Human-readable cause when outcome != Ok.
  std::string failureReason;
  /// Simulated time at which the event queue drained (>= rawWallSeconds:
  /// background flushes keep servers busy after the last rank finishes).
  double simEndSeconds = 0.0;
  /// End-of-run internals snapshot for the invariant checker (src/testkit).
  RunAudit audit;

  [[nodiscard]] bool ok() const noexcept { return outcome == RunOutcome::Ok; }

  /// Aggregate convenience metrics.
  [[nodiscard]] double totalBytesRead() const noexcept;
  [[nodiscard]] double totalBytesWritten() const noexcept;
  [[nodiscard]] double aggregateBandwidth() const noexcept;  ///< bytes/s
};

/// Per-run execution bounds (the measurement watchdog's knob).
struct RunLimits {
  /// Simulated-seconds cap; 0 = unlimited. A capped run whose ranks are
  /// still blocked at the cap returns RunOutcome::TimedOut.
  double maxSimSeconds = 0.0;
};

/// Aggregate construction surface for PfsSimulator — designed for
/// designated initializers:
///
///   PfsSimulator sim{{.cluster = myCluster(), .tracer = &tracer}};
///
/// `tracer` and `counters` are nullable, non-owning observability sinks
/// shared by every run of this simulator (and by the tuning engine and
/// harness built on top of it). Both must outlive the simulator.
struct SimulatorOptions {
  ClusterSpec cluster = defaultCluster();
  /// Sigma of the multiplicative lognormal run-to-run noise.
  double noiseSigma = 0.04;
  obs::Tracer* tracer = nullptr;
  obs::CounterRegistry* counters = nullptr;
  /// Deterministic fault plan applied to every run (nullable, non-owning;
  /// must outlive the simulator). Null or empty = fault-free: runs are
  /// bit-identical to a simulator without the faults layer.
  const faults::FaultPlan* faults = nullptr;
  /// Event-engine construction knobs: scheduler backend, arena sizing, and
  /// shard fan-out for federated clusters (cluster.cells > 1). The `seed`
  /// field is ignored — each run seeds its engines from the run seed.
  /// Results are bit-identical across scheduler backends and shard counts;
  /// only wall-clock performance changes.
  sim::EngineOptions engine{};
};

class PfsSimulator {
 public:
  PfsSimulator() : PfsSimulator(SimulatorOptions{}) {}
  explicit PfsSimulator(SimulatorOptions options) : options_(std::move(options)) {}

  [[nodiscard]] const ClusterSpec& cluster() const noexcept { return options_.cluster; }
  [[nodiscard]] const SimulatorOptions& options() const noexcept { return options_; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return options_.tracer; }
  [[nodiscard]] obs::CounterRegistry* counters() const noexcept {
    return options_.counters;
  }

  /// Bounds context for validating configs against this cluster.
  [[nodiscard]] BoundsContext boundsContext() const noexcept;

  /// Simulates one complete run. Throws std::invalid_argument when the
  /// config is out of range (the same failure the paper reports when the
  /// agent proposes invalid values) or the job is malformed. Fault-induced
  /// failures do NOT throw: they come back as outcome != Ok.
  [[nodiscard]] RunResult run(const JobSpec& job, const PfsConfig& config,
                              std::uint64_t seed) const {
    return run(job, config, seed, RunLimits{});
  }

  /// As above with execution bounds (see RunLimits).
  [[nodiscard]] RunResult run(const JobSpec& job, const PfsConfig& config,
                              std::uint64_t seed, const RunLimits& limits) const;

 private:
  [[nodiscard]] RunResult runSingle(const JobSpec& job, const PfsConfig& config,
                                    std::uint64_t seed, const RunLimits& limits) const;
  /// cluster.cells > 1: partitions the job into shared-nothing cells and
  /// drives them on a sim::ShardedEngine. Bit-identical for any shard
  /// count because cells never interact and all randomness is keyed by
  /// global component ids.
  [[nodiscard]] RunResult runFederated(const JobSpec& job, const PfsConfig& config,
                                       std::uint64_t seed, const RunLimits& limits) const;

  SimulatorOptions options_;
};

}  // namespace stellar::pfs

// Cluster hardware model.
//
// Mirrors the paper's CloudLab testbed (§5.1.1): ten machines with Intel
// Xeon Silver 4114 (10 cores) and ~196 GB RAM on a 10 Gbps switch; five
// configured as object storage servers (one OST each), one combined
// MGS/MDS, and five as client nodes running 10 MPI ranks each (50 total).
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace stellar::pfs {

// The OST disk is modeled in two stages:
//  * a *positioning* stage with `queueDepth` parallel slots carrying the
//    per-RPC setup cost and the seek penalty for non-contiguous accesses
//    (command queueing lets the target overlap positioning work), and
//  * a *transfer* stage with a single server whose service time is
//    bytes/sequentialBandwidth + transferOverhead — the media bandwidth is
//    a shared physical resource, so aggregate throughput caps there.
// This split is what makes concurrency knobs help seek-bound small I/O
// while RPC-size knobs help bandwidth-bound large I/O.
struct DiskSpec {
  /// Sustained media bandwidth, bytes/s (shared across all requests).
  double sequentialBandwidth = 750.0 * 1e6;
  /// Positioning-stage latency when an RPC is not contiguous with the
  /// previous access on the same object.
  double seekPenalty = 2.0e-3;
  /// Fixed per-RPC positioning/setup cost.
  double positioningOverhead = 0.20e-3;
  /// Per-RPC cost serialized with the transfer (request processing,
  /// journal commit); this is what makes small RPCs inefficient.
  double transferOverhead = 0.10e-3;
  /// Parallel positioning slots (command queue depth).
  std::uint32_t queueDepth = 16;
  /// Latency growth per queued positioning request (capped backlog).
  double congestionPenalty = 0.02e-3;
};

struct MdsSpec {
  std::uint32_t serviceThreads = 64;
  double createCost = 85e-6;
  double openCost = 45e-6;
  double statCost = 35e-6;
  double unlinkCost = 95e-6;
  double mkdirCost = 110e-6;
  double lockCost = 25e-6;
  /// Congestion penalty per queued request (bounded backlog contribution,
  /// so deep pipelines saturate throughput instead of collapsing it).
  double congestionPenalty = 2e-6;
};

struct NetworkSpec {
  /// Per-node NIC bandwidth (10 Gbps switch => ~1.21 GiB/s usable).
  double nicBandwidth = 1.21e9;
  /// One-way wire+stack latency per message.
  double messageLatency = 110e-6;
  /// Client-side wait before a lost RPC delivery is declared timed out
  /// and retried (only reachable when a fault plan is active).
  double rpcTimeout = 0.35;
  /// Retry attempts after the first delivery before the client gives up
  /// and the run fails. Backoff doubles per attempt, capped at
  /// 8 * rpcTimeout, so the full budget is bounded (~20 s here).
  std::uint32_t rpcMaxRetries = 8;
};

struct ClusterSpec {
  std::string name = "cloudlab-c10";
  std::uint32_t clientNodes = 5;
  std::uint32_t ranksPerNode = 10;
  std::uint32_t ossNodes = 5;
  std::uint32_t ostsPerOss = 1;
  /// Shared-nothing federation cells (FalconFS-style): the cluster splits
  /// into `cells` identical sub-filesystems, each with its own MDS, its
  /// own slice of the OST pool, and its own client-node group. Ranks on a
  /// cell's nodes only touch that cell's files, and barriers are
  /// cell-scoped. clientNodes and ossNodes must divide evenly by cells;
  /// cells == 1 is the classic single-filesystem testbed. Cells are the
  /// unit the sharded engine distributes across threads.
  std::uint32_t cells = 1;
  std::uint64_t clientRamBytes = 196ULL * util::kGiB;
  DiskSpec disk;
  MdsSpec mds;
  NetworkSpec network;

  /// Per-request client-side syscall/page-cache CPU cost.
  double clientSyscallCost = 4e-6;
  /// Extra CPU cost per byte when checksums are enabled.
  double checksumCostPerByte = 0.35e-9;
  /// Cost of an extent-lock conflict (revoke round trip) on shared files.
  double extentLockConflictCost = 0.45e-3;

  [[nodiscard]] std::uint32_t totalRanks() const noexcept {
    return clientNodes * ranksPerNode;
  }
  [[nodiscard]] std::uint32_t totalOsts() const noexcept {
    return ossNodes * ostsPerOss;
  }
  [[nodiscard]] std::uint32_t nodesPerCell() const noexcept {
    return clientNodes / (cells == 0 ? 1 : cells);
  }
  [[nodiscard]] std::uint32_t ostsPerCell() const noexcept {
    return totalOsts() / (cells == 0 ? 1 : cells);
  }
  [[nodiscard]] std::uint32_t ranksPerCell() const noexcept {
    return nodesPerCell() * ranksPerNode;
  }
  [[nodiscard]] std::int64_t clientRamMb() const noexcept {
    return static_cast<std::int64_t>(clientRamBytes / util::kMiB);
  }
};

/// The default evaluation platform used throughout tests and benches.
[[nodiscard]] ClusterSpec defaultCluster();

/// `cellCount` federated copies of the paper's testbed: 5 client nodes,
/// 5 OSS, 10 ranks per node *per cell*. scaledCluster(1) is the default
/// cluster; scaledCluster(1000) is the 5000-OST / 50000-rank scale point
/// used by bench/micro_engine.
[[nodiscard]] ClusterSpec scaledCluster(std::uint32_t cellCount);

}  // namespace stellar::pfs

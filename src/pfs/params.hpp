// The tunable-parameter surface of the simulated parallel file system.
//
// These are the 13 runtime-tunable, performance-relevant parameters that
// STELLAR's offline RAG extraction selects for Lustre (§4.2.2 of the
// paper); the simulated file system honors each of them mechanically (see
// pfs/client.cpp, pfs/ost.cpp, pfs/mds.cpp). The *candidate* parameter
// universe (including binary, non-runtime, undocumented, and
// non-performance parameters that the extractor must filter out) lives in
// src/manual/param_facts.*.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace stellar::pfs {

/// Runtime configuration applied to one tuning run. Field semantics match
/// the Lustre parameters of the same name; see DESIGN.md §4.
struct PfsConfig {
  /// Number of OSTs a new file is striped across; -1 = all available OSTs.
  std::int64_t stripe_count = 1;
  /// Stripe width in bytes (Lustre: 64KiB..4GiB, power-of-two preferred).
  std::int64_t stripe_size = 1 << 20;
  /// Max concurrent data RPCs per client-OST pair.
  std::int64_t osc_max_rpcs_in_flight = 8;
  /// Max pages (4 KiB) per bulk RPC; bounds RPC payload size.
  std::int64_t osc_max_pages_per_rpc = 256;
  /// Per client-OST dirty write-back budget, MiB.
  std::int64_t osc_max_dirty_mb = 32;
  /// Client-wide readahead budget, MiB.
  std::int64_t llite_max_read_ahead_mb = 64;
  /// Per-file readahead window cap, MiB (<= half the client-wide budget).
  std::int64_t llite_max_read_ahead_per_file_mb = 32;
  /// Files at most this many MiB are prefetched whole on first read.
  std::int64_t llite_max_read_ahead_whole_mb = 2;
  /// Max async stat-ahead entries during directory scans; 0 disables.
  std::int64_t llite_statahead_max = 32;
  /// Max concurrent metadata RPCs per client.
  std::int64_t mdc_max_rpcs_in_flight = 8;
  /// Max concurrent *modifying* metadata RPCs per client
  /// (< mdc_max_rpcs_in_flight).
  std::int64_t mdc_max_mod_rpcs_in_flight = 7;
  /// Client DLM lock LRU capacity; 0 = dynamic sizing (modest under load).
  std::int64_t ldlm_lru_size = 0;
  /// Seconds an unused lock stays cached.
  std::int64_t ldlm_lru_max_age = 3900;

  /// Non-tunable functional switch (data-integrity tradeoff; excluded from
  /// the tuning surface per §4.2.2 but honored by the simulator: checksums
  /// add per-byte CPU cost).
  bool osc_checksums = false;

  [[nodiscard]] bool operator==(const PfsConfig&) const = default;

  /// Generic access by parameter name (the canonical dotted names, e.g.
  /// "osc.max_rpcs_in_flight"). Returns false for unknown names.
  [[nodiscard]] bool set(std::string_view name, std::int64_t value);
  [[nodiscard]] std::optional<std::int64_t> get(std::string_view name) const;

  /// All 13 tunable parameter names, canonical order.
  [[nodiscard]] static const std::vector<std::string>& tunableNames();

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] static PfsConfig fromJson(const util::Json& json);

  /// Human-readable one-line diff against another config ("stripe_count:
  /// 1 -> -1, ..."); empty if equal. Used in tuning transcripts.
  [[nodiscard]] std::string diffAgainst(const PfsConfig& base) const;
};

/// Hard validity ranges for each tunable given the running system
/// (dependent bounds resolved against facts like client RAM). Violations
/// are what the paper's "No value ranges" failure mode produces.
struct ParamBounds {
  std::int64_t min = 0;
  std::int64_t max = 0;
};

/// System facts needed to resolve dependent bounds; see pfs::ClusterSpec
/// for where the canonical values come from.
struct BoundsContext {
  std::int64_t clientRamMb = 196 * 1024;
  std::int64_t ostCount = 5;
};

/// Returns the valid range of `name` under `ctx`, resolving dependent
/// bounds (e.g. max_read_ahead_per_file_mb <= max_read_ahead_mb / 2)
/// against the *other values in cfg*. nullopt for unknown names.
[[nodiscard]] std::optional<ParamBounds> paramBounds(std::string_view name,
                                                     const PfsConfig& cfg,
                                                     const BoundsContext& ctx);

/// Validates every field; returns the list of violations (empty = valid).
[[nodiscard]] std::vector<std::string> validateConfig(const PfsConfig& cfg,
                                                      const BoundsContext& ctx);

/// Clamps every field into its valid range (dependent bounds applied in
/// dependency order).
[[nodiscard]] PfsConfig clampConfig(PfsConfig cfg, const BoundsContext& ctx);

}  // namespace stellar::pfs

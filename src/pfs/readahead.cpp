#include "pfs/readahead.hpp"

#include <algorithm>

namespace stellar::pfs {

namespace {

std::uint64_t alignUp(std::uint64_t value, std::uint64_t align) noexcept {
  if (align == 0) {
    return value;
  }
  const std::uint64_t rem = value % align;
  return rem == 0 ? value : value + (align - rem);
}

}  // namespace

ReadaDecision advanceWindow(ReadaWindow& window, const ReadaheadKnobs& knobs,
                            bool sequential, bool firstRead,
                            bool sizeKnownLocally, std::uint64_t offset,
                            std::uint64_t readEnd,
                            std::uint64_t knownSize) noexcept {
  ReadaDecision decision;
  decision.prefetchBegin = offset;
  decision.prefetchEnd = offset;
  if (!knobs.enabled()) {
    return decision;
  }

  const std::uint64_t initial =
      std::min(ReadaWindow::kInitialBytes, knobs.perFileBytes);

  if (firstRead) {
    if (sizeKnownLocally && knownSize > 0 && knownSize <= knobs.wholeFileBytes) {
      // Whole-file shot: fetch the file in one speculative burst and park the
      // window — later sequential reads are served from cache without ever
      // re-entering the ramp. Exact EOF, no alignment rounding.
      window.wholeMode = true;
      window.length = 0;
      decision.event = ReadaEvent::Opened;
      decision.prefetchEnd = std::max(readEnd, knownSize);
      return decision;
    }
    window.wholeMode = false;
    window.length = initial;
    decision.event = ReadaEvent::Opened;
  } else if (window.wholeMode) {
    // Parked: the whole file is resident or in flight.
    return decision;
  } else if (sequential) {
    const std::uint64_t doubled =
        window.length == 0 ? initial : window.length * 2;
    const std::uint64_t grown = std::min(doubled, knobs.perFileBytes);
    decision.event =
        grown > window.length ? ReadaEvent::Grown : ReadaEvent::None;
    window.length = grown;
  } else {
    // Miss: shrink back to the initial ramp and skip the prefetch entirely —
    // a non-sequential reader gains nothing from speculation, and not
    // fetching is what separates the warm and cold response surfaces.
    window.length = initial;
    decision.event = ReadaEvent::Reset;
    return decision;
  }

  std::uint64_t end = alignUp(readEnd + window.length, knobs.alignBytes);
  if (knownSize > 0) {
    end = std::min(end, std::max(knownSize, readEnd));
  }
  decision.prefetchEnd = std::max(end, offset);
  return decision;
}

}  // namespace stellar::pfs

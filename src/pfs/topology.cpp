#include "pfs/topology.hpp"

namespace stellar::pfs {

ClusterSpec defaultCluster() {
  return ClusterSpec{};
}

}  // namespace stellar::pfs

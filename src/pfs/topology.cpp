#include "pfs/topology.hpp"

#include <algorithm>

namespace stellar::pfs {

ClusterSpec defaultCluster() {
  return ClusterSpec{};
}

ClusterSpec scaledCluster(std::uint32_t cellCount) {
  cellCount = std::max<std::uint32_t>(cellCount, 1);
  ClusterSpec cluster = defaultCluster();
  cluster.clientNodes *= cellCount;
  cluster.ossNodes *= cellCount;
  cluster.cells = cellCount;
  cluster.name = "federated-c10x" + std::to_string(cellCount);
  return cluster;
}

}  // namespace stellar::pfs

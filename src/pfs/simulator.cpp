#include "pfs/simulator.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "faults/fault_injector.hpp"
#include "sim/sharded_engine.hpp"
#include "util/strings.hpp"

namespace stellar::pfs {

namespace {

/// Seed mix tag for the post-run measurement noise stream. Shared by the
/// single-engine and federated paths so a cells==1 cluster produces the
/// same noise draw either way.
constexpr std::uint64_t kNoiseTag = 0x9F0A5EEDULL;

void accumulateCounters(RunCounters& into, const RunCounters& from) {
  into.dataRpcs += from.dataRpcs;
  into.metaRpcs += from.metaRpcs;
  into.lockHits += from.lockHits;
  into.lockMisses += from.lockMisses;
  into.readaheadHitBytes += from.readaheadHitBytes;
  into.readaheadMissBytes += from.readaheadMissBytes;
  into.pageCacheHitBytes += from.pageCacheHitBytes;
  into.stataheadServed += from.stataheadServed;
  into.extentConflicts += from.extentConflicts;
  into.rpcTimeouts += from.rpcTimeouts;
  into.rpcRetries += from.rpcRetries;
  into.rpcGaveUp += from.rpcGaveUp;
  into.writeRpcBytes += from.writeRpcBytes;
  into.readRpcBytes += from.readRpcBytes;
  into.dirtyDiscardedBytes += from.dirtyDiscardedBytes;
}

}  // namespace

const char* runOutcomeName(RunOutcome outcome) noexcept {
  switch (outcome) {
    case RunOutcome::Ok: return "ok";
    case RunOutcome::Failed: return "failed";
    case RunOutcome::TimedOut: return "timed-out";
  }
  return "?";
}

double RunResult::totalBytesRead() const noexcept {
  double total = 0.0;
  for (const RankStats& r : ranks) {
    total += static_cast<double>(r.bytesRead);
  }
  return total;
}

double RunResult::totalBytesWritten() const noexcept {
  double total = 0.0;
  for (const RankStats& r : ranks) {
    total += static_cast<double>(r.bytesWritten);
  }
  return total;
}

double RunResult::aggregateBandwidth() const noexcept {
  if (wallSeconds <= 0.0) {
    return 0.0;
  }
  return (totalBytesRead() + totalBytesWritten()) / wallSeconds;
}

BoundsContext PfsSimulator::boundsContext() const noexcept {
  BoundsContext ctx;
  ctx.clientRamMb = cluster().clientRamMb();
  ctx.ostCount = cluster().totalOsts();
  return ctx;
}

RunResult PfsSimulator::run(const JobSpec& job, const PfsConfig& config,
                            std::uint64_t seed, const RunLimits& limits) const {
  const auto jobProblems = job.validate();
  if (!jobProblems.empty()) {
    throw std::invalid_argument("invalid job '" + job.name +
                                "': " + util::join(jobProblems, "; "));
  }
  const auto cfgProblems = validateConfig(config, boundsContext());
  if (!cfgProblems.empty()) {
    // Last line of defense for out-of-range knobs: every rejection is
    // counted so the chaos bench can prove none slipped past the agent-side
    // sanitizer (ISSUE 7).
    if (options_.counters != nullptr) {
      options_.counters->counter("pfs.sim.config_rejected").add();
    }
    throw std::invalid_argument("invalid PFS config: " + util::join(cfgProblems, "; "));
  }
  if (job.rankCount() > cluster().totalRanks()) {
    throw std::invalid_argument("job requests more ranks than the cluster provides");
  }
  if (cluster().cells > 1) {
    return runFederated(job, config, seed, limits);
  }
  return runSingle(job, config, seed, limits);
}

RunResult PfsSimulator::runSingle(const JobSpec& job, const PfsConfig& config,
                                  std::uint64_t seed, const RunLimits& limits) const {
  obs::Tracer::Span runSpan = obs::beginSpan(options_.tracer, "sim", "pfs.run:" + job.name);

  sim::EngineOptions engineOptions = options_.engine;
  engineOptions.seed = seed;
  engineOptions.shards = 1;
  sim::SimEngine engine{engineOptions};
  engine.attachObservability(options_.tracer, options_.counters);

  // The injector is armed before the client schedules its start-of-run
  // events, so window edges hold stable FIFO positions against every
  // client/server event — the determinism contract.
  std::optional<faults::FaultInjector> injector;
  if (options_.faults != nullptr && !options_.faults->empty()) {
    injector.emplace(engine, *options_.faults, cluster().totalOsts(), seed);
    injector->attachObservability(options_.tracer, options_.counters);
    injector->arm();
  }

  ClientRuntime runtime{engine,          cluster(),
                        config,          job,
                        options_.tracer, injector ? &*injector : nullptr,
                        RunScope{seed, 0, 0}};
  runtime.start();
  if (limits.maxSimSeconds > 0.0) {
    (void)engine.runUntil(limits.maxSimSeconds);
  } else {
    (void)engine.run();  // drains trailing background writeout too
  }

  RunResult result;
  if (!runtime.allRanksDone()) {
    if (limits.maxSimSeconds > 0.0) {
      // Watchdog tripped: the measurement is abandoned, not trusted.
      // Retire still-open fault windows so the injector's window ledger
      // (and any window-scoped effect) resets cleanly before the caller's
      // next measurement.
      engine.cancelOpenWindows();
      result.outcome = RunOutcome::TimedOut;
      result.failureReason = "simulated time cap of " +
                             std::to_string(limits.maxSimSeconds) +
                             "s exceeded with ranks still running";
      result.wallSeconds = limits.maxSimSeconds;
      result.rawWallSeconds = limits.maxSimSeconds;
      result.counters = runtime.counters();
      result.counters.events = engine.eventsProcessed();
      result.simEndSeconds = engine.now();
      result.audit = runtime.audit();
      if (options_.counters != nullptr) {
        runtime.flushObservability(*options_.counters);
      }
      return result;
    }
    throw std::logic_error("simulation deadlock: event queue drained with ranks blocked (job '" +
                           job.name + "')");
  }
  if (runtime.failed()) {
    result.outcome = RunOutcome::Failed;
    result.failureReason = runtime.failureReason();
  }

  // The measured wall time is when the application exits (the slowest
  // rank finishes); background write-back continuing after exit is not
  // part of the benchmark's wall clock — workloads that need the data on
  // stable storage fsync before their final barrier, which is counted.
  double wall = 0.0;
  for (const RankStats& r : runtime.rankStats()) {
    wall = std::max(wall, r.finishTime);
  }
  result.rawWallSeconds = wall;
  // Run-to-run variance: the paper repeats every case 8x and reports 90%
  // CIs; the multiplicative lognormal reproduces that spread. Noise-spike
  // windows widen sigma by their overlap-weighted excess.
  double sigma = options_.noiseSigma;
  if (injector) {
    sigma *= injector->noiseMultiplierOver(wall);
  }
  util::Rng noiseRng{util::mix64(seed, kNoiseTag)};
  result.wallSeconds = wall * noiseRng.lognormalNoise(sigma);
  result.files = runtime.fileStats();
  result.ranks = runtime.rankStats();
  result.counters = runtime.counters();
  result.barrierTimes = runtime.barrierTimes();
  result.counters.events = engine.eventsProcessed();
  result.simEndSeconds = engine.now();
  result.audit = runtime.audit();

  if (options_.counters != nullptr) {
    runtime.flushObservability(*options_.counters);
  }
  if (runSpan.active()) {
    runSpan.arg("sim_seconds", util::Json(result.wallSeconds));
    runSpan.arg("data_rpcs", util::Json(static_cast<std::int64_t>(result.counters.dataRpcs)));
    runSpan.arg("meta_rpcs", util::Json(static_cast<std::int64_t>(result.counters.metaRpcs)));
    runSpan.arg("events", util::Json(static_cast<std::int64_t>(result.counters.events)));
  }
  return result;
}

RunResult PfsSimulator::runFederated(const JobSpec& job, const PfsConfig& config,
                                     std::uint64_t seed, const RunLimits& limits) const {
  const ClusterSpec& cl = cluster();
  const std::uint32_t cells = cl.cells;
  if (cl.clientNodes % cells != 0 || cl.ossNodes % cells != 0) {
    throw std::invalid_argument(
        "federated cluster '" + cl.name + "': cells (" + std::to_string(cells) +
        ") must divide clientNodes and ossNodes evenly");
  }
  const std::uint32_t nodesPerCell = cl.nodesPerCell();
  const std::uint32_t ostsPerCell = cl.ostsPerCell();
  const std::uint32_t ranksPerCell = cl.ranksPerCell();

  obs::Tracer::Span runSpan =
      obs::beginSpan(options_.tracer, "sim", "pfs.run:" + job.name);

  // Every cell is an identical shared-nothing copy of this sub-cluster.
  ClusterSpec cellCluster = cl;
  cellCluster.clientNodes = nodesPerCell;
  cellCluster.ossNodes = cl.ossNodes / cells;
  cellCluster.cells = 1;

  // Partition the job by cell. A file touched from two cells would couple
  // them (cross-cell data paths do not exist in the federation model), so
  // that is a malformed job, reported like any other validation failure.
  struct CellJob {
    JobSpec job;
    std::vector<FileId> localToGlobal;
    std::uint32_t rankOffset = 0;
  };
  std::vector<std::optional<CellJob>> cellJobs(cells);
  std::vector<std::int64_t> fileOwner(job.files.size(), -1);
  std::vector<FileId> fileLocal(job.files.size(), kInvalidFile);
  for (std::uint32_t r = 0; r < job.rankCount(); ++r) {
    const std::uint32_t c = (r / cl.ranksPerNode) / nodesPerCell;
    auto& slot = cellJobs[c];
    if (!slot) {
      slot.emplace();
      slot->job.name = job.name + "@cell" + std::to_string(c);
      slot->job.dirs = job.dirs;
      slot->rankOffset = c * ranksPerCell;
    }
    std::vector<IoOp> program = job.ranks[r];
    for (IoOp& op : program) {
      if (op.file == kInvalidFile) {
        continue;
      }
      if (fileOwner[op.file] < 0) {
        fileOwner[op.file] = c;
        fileLocal[op.file] =
            slot->job.addFile(job.files[op.file].name, job.files[op.file].dir);
        slot->localToGlobal.push_back(op.file);
      } else if (fileOwner[op.file] != static_cast<std::int64_t>(c)) {
        throw std::invalid_argument(
            "invalid job '" + job.name + "': file '" + job.files[op.file].name +
            "' is touched from more than one federation cell");
      }
      op.file = fileLocal[op.file];
    }
    slot->job.ranks.push_back(std::move(program));
  }

  sim::EngineOptions engineOptions = options_.engine;
  engineOptions.seed = seed;
  engineOptions.shards = std::clamp<std::uint32_t>(engineOptions.shards, 1, cells);
  sim::ShardedEngine engines{engineOptions};
  engines.attachObservability(options_.tracer, options_.counters);
  const std::size_t shardCount = engines.shardCount();

  // Per-cell fault injectors and runtimes. Cells are assigned to engine
  // shards in contiguous groups; because every stream of randomness is
  // keyed by global ids, the grouping cannot change any cell's results.
  struct CellRun {
    std::uint32_t cell = 0;
    const CellJob* spec = nullptr;
    std::unique_ptr<faults::FaultInjector> injector;
    std::unique_ptr<ClientRuntime> runtime;
  };
  const bool haveFaults = options_.faults != nullptr && !options_.faults->empty();
  std::vector<CellRun> runs;
  runs.reserve(cells);
  for (std::uint32_t c = 0; c < cells; ++c) {
    if (!cellJobs[c]) {
      continue;  // no ranks landed in this cell
    }
    const std::size_t g = static_cast<std::size_t>(c) * shardCount / cells;
    sim::SimEngine& engine = engines.shard(g);
    CellRun run;
    run.cell = c;
    run.spec = &*cellJobs[c];
    if (haveFaults) {
      run.injector = std::make_unique<faults::FaultInjector>(
          engine, *options_.faults, cl.totalOsts(), seed);
      run.injector->attachObservability(options_.tracer, options_.counters);
      run.injector->arm();
    }
    run.runtime = std::make_unique<ClientRuntime>(
        engine, cellCluster, config, run.spec->job, options_.tracer,
        run.injector.get(),
        RunScope{seed, c * nodesPerCell, c * ostsPerCell});
    run.runtime->start();
    runs.push_back(std::move(run));
  }

  if (limits.maxSimSeconds > 0.0) {
    (void)engines.runUntil(limits.maxSimSeconds);
  } else {
    (void)engines.run();
  }

  const auto mergeAudit = [&](RunAudit& into) {
    into.osts.assign(cl.totalOsts(), OstAudit{});
    for (const CellRun& run : runs) {
      const RunAudit a = run.runtime->audit();
      for (std::size_t i = 0; i < a.osts.size(); ++i) {
        into.osts[static_cast<std::size_t>(run.cell) * ostsPerCell + i] = a.osts[i];
      }
      into.peakDirtyBytes = std::max(into.peakDirtyBytes, a.peakDirtyBytes);
      into.maxDirtyReservationBytes =
          std::max(into.maxDirtyReservationBytes, a.maxDirtyReservationBytes);
      into.dirtyBudgetBytes = a.dirtyBudgetBytes;
      into.lockInserts += a.lockInserts;
      into.lockEvictions += a.lockEvictions;
      into.lockResident += a.lockResident;
      into.readaWindowsOpened += a.readaWindowsOpened;
      into.readaWindowsGrown += a.readaWindowsGrown;
      into.readaWindowsReset += a.readaWindowsReset;
      into.readaPrefetchedBytes += a.readaPrefetchedBytes;
      into.readaConsumedBytes += a.readaConsumedBytes;
      into.readaDiscardedBytes += a.readaDiscardedBytes;
      into.readaResidentBytes += a.readaResidentBytes;
      into.mdsOps += a.mdsOps;
      into.mdsBusySeconds += a.mdsBusySeconds;
    }
  };

  RunResult result;
  bool allDone = true;
  for (const CellRun& run : runs) {
    allDone = allDone && run.runtime->allRanksDone();
  }
  if (!allDone) {
    if (limits.maxSimSeconds > 0.0) {
      engines.cancelOpenWindows();
      result.outcome = RunOutcome::TimedOut;
      result.failureReason = "simulated time cap of " +
                             std::to_string(limits.maxSimSeconds) +
                             "s exceeded with ranks still running";
      result.wallSeconds = limits.maxSimSeconds;
      result.rawWallSeconds = limits.maxSimSeconds;
      for (const CellRun& run : runs) {
        accumulateCounters(result.counters, run.runtime->counters());
      }
      result.counters.events = engines.eventsProcessed();
      result.simEndSeconds = engines.now();
      mergeAudit(result.audit);
      if (options_.counters != nullptr) {
        for (const CellRun& run : runs) {
          run.runtime->flushObservability(*options_.counters);
        }
      }
      return result;
    }
    throw std::logic_error(
        "simulation deadlock: event queue drained with ranks blocked (job '" +
        job.name + "')");
  }
  for (const CellRun& run : runs) {
    if (run.runtime->failed()) {
      result.outcome = RunOutcome::Failed;
      result.failureReason = run.runtime->failureReason();
      break;
    }
  }

  double wall = 0.0;
  result.files.resize(job.files.size());
  result.ranks.resize(job.rankCount());
  for (const CellRun& run : runs) {
    const std::vector<RankStats>& rs = run.runtime->rankStats();
    for (std::size_t i = 0; i < rs.size(); ++i) {
      result.ranks[run.spec->rankOffset + i] = rs[i];
      wall = std::max(wall, rs[i].finishTime);
    }
    const std::vector<FileStats>& fsv = run.runtime->fileStats();
    for (std::size_t i = 0; i < fsv.size(); ++i) {
      result.files[run.spec->localToGlobal[i]] = fsv[i];
    }
    accumulateCounters(result.counters, run.runtime->counters());
    // Barriers are cell-scoped; the k-th "global" barrier is effectively
    // released when the last cell releases its k-th barrier.
    const std::vector<double>& bt = run.runtime->barrierTimes();
    if (bt.size() > result.barrierTimes.size()) {
      result.barrierTimes.resize(bt.size(), 0.0);
    }
    for (std::size_t i = 0; i < bt.size(); ++i) {
      result.barrierTimes[i] = std::max(result.barrierTimes[i], bt[i]);
    }
  }
  result.rawWallSeconds = wall;
  double sigma = options_.noiseSigma;
  if (!runs.empty() && runs.front().injector) {
    // noiseMultiplierOver is a pure function of the (shared) plan, so any
    // cell's injector gives the same answer.
    sigma *= runs.front().injector->noiseMultiplierOver(wall);
  }
  util::Rng noiseRng{util::mix64(seed, kNoiseTag)};
  result.wallSeconds = wall * noiseRng.lognormalNoise(sigma);
  result.counters.events = engines.eventsProcessed();
  result.simEndSeconds = engines.now();
  mergeAudit(result.audit);

  if (options_.counters != nullptr) {
    for (const CellRun& run : runs) {
      run.runtime->flushObservability(*options_.counters);
    }
  }
  if (runSpan.active()) {
    runSpan.arg("sim_seconds", util::Json(result.wallSeconds));
    runSpan.arg("cells", util::Json(static_cast<std::int64_t>(cells)));
    runSpan.arg("shards", util::Json(static_cast<std::int64_t>(shardCount)));
    runSpan.arg("events", util::Json(static_cast<std::int64_t>(result.counters.events)));
  }
  return result;
}

}  // namespace stellar::pfs

#include "pfs/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace stellar::pfs {

double RunResult::totalBytesRead() const noexcept {
  double total = 0.0;
  for (const RankStats& r : ranks) {
    total += static_cast<double>(r.bytesRead);
  }
  return total;
}

double RunResult::totalBytesWritten() const noexcept {
  double total = 0.0;
  for (const RankStats& r : ranks) {
    total += static_cast<double>(r.bytesWritten);
  }
  return total;
}

double RunResult::aggregateBandwidth() const noexcept {
  if (wallSeconds <= 0.0) {
    return 0.0;
  }
  return (totalBytesRead() + totalBytesWritten()) / wallSeconds;
}

BoundsContext PfsSimulator::boundsContext() const noexcept {
  BoundsContext ctx;
  ctx.clientRamMb = cluster().clientRamMb();
  ctx.ostCount = cluster().totalOsts();
  return ctx;
}

RunResult PfsSimulator::run(const JobSpec& job, const PfsConfig& config,
                            std::uint64_t seed) const {
  const auto jobProblems = job.validate();
  if (!jobProblems.empty()) {
    throw std::invalid_argument("invalid job '" + job.name +
                                "': " + util::join(jobProblems, "; "));
  }
  const auto cfgProblems = validateConfig(config, boundsContext());
  if (!cfgProblems.empty()) {
    throw std::invalid_argument("invalid PFS config: " + util::join(cfgProblems, "; "));
  }
  if (job.rankCount() > cluster().totalRanks()) {
    throw std::invalid_argument("job requests more ranks than the cluster provides");
  }

  obs::Tracer::Span runSpan = obs::beginSpan(options_.tracer, "sim", "pfs.run:" + job.name);

  sim::SimEngine engine{seed};
  engine.attachObservability(options_.tracer, options_.counters);
  ClientRuntime runtime{engine, cluster(), config, job, options_.tracer};
  runtime.start();
  (void)engine.run();  // drains trailing background writeout too

  if (!runtime.allRanksDone()) {
    throw std::logic_error("simulation deadlock: event queue drained with ranks blocked (job '" +
                           job.name + "')");
  }

  RunResult result;
  // The measured wall time is when the application exits (the slowest
  // rank finishes); background write-back continuing after exit is not
  // part of the benchmark's wall clock — workloads that need the data on
  // stable storage fsync before their final barrier, which is counted.
  double wall = 0.0;
  for (const RankStats& r : runtime.rankStats()) {
    wall = std::max(wall, r.finishTime);
  }
  result.rawWallSeconds = wall;
  // Run-to-run variance: the paper repeats every case 8x and reports 90%
  // CIs; the multiplicative lognormal reproduces that spread.
  util::Rng noiseRng{util::mix64(seed, 0x9F0A5EEDULL)};
  result.wallSeconds = wall * noiseRng.lognormalNoise(options_.noiseSigma);
  result.files = runtime.fileStats();
  result.ranks = runtime.rankStats();
  result.counters = runtime.counters();
  result.barrierTimes = runtime.barrierTimes();
  result.counters.events = engine.eventsProcessed();

  if (options_.counters != nullptr) {
    runtime.flushObservability(*options_.counters);
  }
  if (runSpan.active()) {
    runSpan.arg("sim_seconds", util::Json(result.wallSeconds));
    runSpan.arg("data_rpcs", util::Json(static_cast<std::int64_t>(result.counters.dataRpcs)));
    runSpan.arg("meta_rpcs", util::Json(static_cast<std::int64_t>(result.counters.metaRpcs)));
    runSpan.arg("events", util::Json(static_cast<std::int64_t>(result.counters.events)));
  }
  return result;
}

}  // namespace stellar::pfs

#include "pfs/simulator.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "faults/fault_injector.hpp"
#include "util/strings.hpp"

namespace stellar::pfs {

const char* runOutcomeName(RunOutcome outcome) noexcept {
  switch (outcome) {
    case RunOutcome::Ok: return "ok";
    case RunOutcome::Failed: return "failed";
    case RunOutcome::TimedOut: return "timed-out";
  }
  return "?";
}

double RunResult::totalBytesRead() const noexcept {
  double total = 0.0;
  for (const RankStats& r : ranks) {
    total += static_cast<double>(r.bytesRead);
  }
  return total;
}

double RunResult::totalBytesWritten() const noexcept {
  double total = 0.0;
  for (const RankStats& r : ranks) {
    total += static_cast<double>(r.bytesWritten);
  }
  return total;
}

double RunResult::aggregateBandwidth() const noexcept {
  if (wallSeconds <= 0.0) {
    return 0.0;
  }
  return (totalBytesRead() + totalBytesWritten()) / wallSeconds;
}

BoundsContext PfsSimulator::boundsContext() const noexcept {
  BoundsContext ctx;
  ctx.clientRamMb = cluster().clientRamMb();
  ctx.ostCount = cluster().totalOsts();
  return ctx;
}

RunResult PfsSimulator::run(const JobSpec& job, const PfsConfig& config,
                            std::uint64_t seed, const RunLimits& limits) const {
  const auto jobProblems = job.validate();
  if (!jobProblems.empty()) {
    throw std::invalid_argument("invalid job '" + job.name +
                                "': " + util::join(jobProblems, "; "));
  }
  const auto cfgProblems = validateConfig(config, boundsContext());
  if (!cfgProblems.empty()) {
    throw std::invalid_argument("invalid PFS config: " + util::join(cfgProblems, "; "));
  }
  if (job.rankCount() > cluster().totalRanks()) {
    throw std::invalid_argument("job requests more ranks than the cluster provides");
  }

  obs::Tracer::Span runSpan = obs::beginSpan(options_.tracer, "sim", "pfs.run:" + job.name);

  sim::SimEngine engine{seed};
  engine.attachObservability(options_.tracer, options_.counters);

  // The injector is armed before the client schedules its start-of-run
  // events, so window edges hold stable FIFO positions against every
  // client/server event — the determinism contract.
  std::optional<faults::FaultInjector> injector;
  if (options_.faults != nullptr && !options_.faults->empty()) {
    injector.emplace(engine, *options_.faults, cluster().totalOsts(), seed);
    injector->attachObservability(options_.tracer, options_.counters);
    injector->arm();
  }

  ClientRuntime runtime{engine, cluster(), config, job, options_.tracer,
                        injector ? &*injector : nullptr};
  runtime.start();
  if (limits.maxSimSeconds > 0.0) {
    (void)engine.runUntil(limits.maxSimSeconds);
  } else {
    (void)engine.run();  // drains trailing background writeout too
  }

  RunResult result;
  if (!runtime.allRanksDone()) {
    if (limits.maxSimSeconds > 0.0) {
      // Watchdog tripped: the measurement is abandoned, not trusted.
      result.outcome = RunOutcome::TimedOut;
      result.failureReason = "simulated time cap of " +
                             std::to_string(limits.maxSimSeconds) +
                             "s exceeded with ranks still running";
      result.wallSeconds = limits.maxSimSeconds;
      result.rawWallSeconds = limits.maxSimSeconds;
      result.counters = runtime.counters();
      result.counters.events = engine.eventsProcessed();
      result.simEndSeconds = engine.now();
      result.audit = runtime.audit();
      if (options_.counters != nullptr) {
        runtime.flushObservability(*options_.counters);
      }
      return result;
    }
    throw std::logic_error("simulation deadlock: event queue drained with ranks blocked (job '" +
                           job.name + "')");
  }
  if (runtime.failed()) {
    result.outcome = RunOutcome::Failed;
    result.failureReason = runtime.failureReason();
  }

  // The measured wall time is when the application exits (the slowest
  // rank finishes); background write-back continuing after exit is not
  // part of the benchmark's wall clock — workloads that need the data on
  // stable storage fsync before their final barrier, which is counted.
  double wall = 0.0;
  for (const RankStats& r : runtime.rankStats()) {
    wall = std::max(wall, r.finishTime);
  }
  result.rawWallSeconds = wall;
  // Run-to-run variance: the paper repeats every case 8x and reports 90%
  // CIs; the multiplicative lognormal reproduces that spread. Noise-spike
  // windows widen sigma by their overlap-weighted excess.
  double sigma = options_.noiseSigma;
  if (injector) {
    sigma *= injector->noiseMultiplierOver(wall);
  }
  util::Rng noiseRng{util::mix64(seed, 0x9F0A5EEDULL)};
  result.wallSeconds = wall * noiseRng.lognormalNoise(sigma);
  result.files = runtime.fileStats();
  result.ranks = runtime.rankStats();
  result.counters = runtime.counters();
  result.barrierTimes = runtime.barrierTimes();
  result.counters.events = engine.eventsProcessed();
  result.simEndSeconds = engine.now();
  result.audit = runtime.audit();

  if (options_.counters != nullptr) {
    runtime.flushObservability(*options_.counters);
  }
  if (runSpan.active()) {
    runSpan.arg("sim_seconds", util::Json(result.wallSeconds));
    runSpan.arg("data_rpcs", util::Json(static_cast<std::int64_t>(result.counters.dataRpcs)));
    runSpan.arg("meta_rpcs", util::Json(static_cast<std::int64_t>(result.counters.metaRpcs)));
    runSpan.arg("events", util::Json(static_cast<std::int64_t>(result.counters.events)));
  }
  return result;
}

}  // namespace stellar::pfs

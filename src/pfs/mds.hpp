// Metadata server model: a pool of service threads with per-op-kind costs,
// congestion latency under backlog, and deterministic jitter.
//
// Jitter draws from the model's own random stream (keyed by the run seed
// and the cell's OST offset), not the engine's: per-cell results stay
// invariant under how cells are grouped onto engine shards.
#pragma once

#include <cstdint>
#include <utility>

#include "pfs/topology.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/service_center.hpp"
#include "util/rng.hpp"

namespace stellar::faults {
class FaultInjector;
}

namespace stellar::pfs {

enum class MetaOpKind : std::uint8_t { Create, Open, Stat, Unlink, Mkdir, Lock, Close };

[[nodiscard]] const char* metaOpName(MetaOpKind kind) noexcept;

class MdsModel {
 public:
  /// `seed` keys this MDS's jitter stream; callers pass a value derived
  /// from (run seed, cell identity).
  MdsModel(sim::SimEngine& engine, const ClusterSpec& cluster, std::uint64_t seed);

  MdsModel(const MdsModel&) = delete;
  MdsModel& operator=(const MdsModel&) = delete;

  /// Submits a metadata RPC that has arrived at the server.
  /// `stripeCount` scales create/unlink cost (object allocation/destroy
  /// on each stripe target).
  void submit(MetaOpKind kind, std::uint32_t stripeCount, sim::Callback onDone);

  template <sim::EventCallable F>
  void submit(MetaOpKind kind, std::uint32_t stripeCount, F&& onDone) {
    submit(kind, stripeCount, sim::Callback{engine_.arena(), std::forward<F>(onDone)});
  }

  [[nodiscard]] std::uint64_t opsServed() const noexcept { return opsServed_; }
  [[nodiscard]] double busyTime() const noexcept { return threads_.busyTime(); }

  void reset() noexcept { opsServed_ = 0; }

  /// Attaches (nullable, non-owning) live fault state: overload windows
  /// scale metadata service times.
  void attachFaults(const faults::FaultInjector* faults) noexcept { faults_ = faults; }

 private:
  [[nodiscard]] double baseCost(MetaOpKind kind) const noexcept;

  sim::SimEngine& engine_;
  const ClusterSpec& cluster_;
  const faults::FaultInjector* faults_ = nullptr;
  sim::ServiceCenter threads_;
  util::Rng rng_;
  std::uint64_t opsServed_ = 0;
};

}  // namespace stellar::pfs

// File striping math: maps a (offset, length) byte extent of a file to the
// per-OST object extents it touches, given the file's layout (stripe size,
// stripe count, starting OST). This is the exact RAID-0 mapping Lustre's
// LOV layer performs.
#pragma once

#include <cstdint>
#include <vector>

namespace stellar::pfs {

struct FileLayout {
  std::uint32_t stripeCount = 1;   ///< resolved (never -1 here)
  std::uint64_t stripeSize = 1 << 20;
  std::uint32_t firstOst = 0;      ///< OST index of stripe 0
  std::uint32_t totalOsts = 1;     ///< OSTs in the system (for round-robin)

  /// The OST serving stripe index `stripe` of this file.
  [[nodiscard]] std::uint32_t ostForStripe(std::uint64_t stripe) const noexcept {
    return (firstOst + static_cast<std::uint32_t>(stripe % stripeCount)) % totalOsts;
  }
};

/// One contiguous piece of a file extent on a single OST object.
struct ObjectExtent {
  std::uint32_t ost = 0;
  /// Offset within the OST *object* (object-local coordinates).
  std::uint64_t objectOffset = 0;
  std::uint64_t length = 0;
  /// The file-space offset this piece starts at (for cache bookkeeping).
  std::uint64_t fileOffset = 0;
};

/// Splits the file extent [offset, offset+length) into per-OST object
/// extents, ordered by file offset. Adjacent same-stripe-column pieces are
/// NOT merged (each crossing of a stripe boundary yields a new piece),
/// matching how the OSC sees bulk I/O.
[[nodiscard]] std::vector<ObjectExtent> mapExtent(const FileLayout& layout,
                                                  std::uint64_t offset,
                                                  std::uint64_t length);

/// Object-local offset corresponding to a file offset (for contiguity
/// tracking on the server side).
[[nodiscard]] std::uint64_t objectOffsetFor(const FileLayout& layout,
                                            std::uint64_t fileOffset) noexcept;

}  // namespace stellar::pfs

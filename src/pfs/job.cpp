#include "pfs/job.hpp"

namespace stellar::pfs {

DirId JobSpec::addDir(std::string name) {
  dirs.push_back(DirDecl{std::move(name)});
  return static_cast<DirId>(dirs.size() - 1);
}

FileId JobSpec::addFile(std::string name, DirId dir) {
  files.push_back(FileDecl{std::move(name), dir});
  return static_cast<FileId>(files.size() - 1);
}

std::uint64_t JobSpec::totalOps() const noexcept {
  std::uint64_t total = 0;
  for (const auto& program : ranks) {
    total += program.size();
  }
  return total;
}

std::vector<std::string> JobSpec::validate() const {
  std::vector<std::string> problems;
  if (ranks.empty()) {
    problems.emplace_back("job has no ranks");
  }
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    if (ranks[r].empty()) {
      problems.push_back("rank " + std::to_string(r) + " has an empty program");
    }
    for (const IoOp& op : ranks[r]) {
      const bool needsFile = op.kind == OpKind::Create || op.kind == OpKind::Open ||
                             op.kind == OpKind::Close || op.kind == OpKind::Write ||
                             op.kind == OpKind::Read || op.kind == OpKind::Stat ||
                             op.kind == OpKind::Unlink || op.kind == OpKind::Fsync;
      if (needsFile && op.file >= files.size()) {
        problems.push_back("rank " + std::to_string(r) + " references invalid file id " +
                           std::to_string(op.file));
      }
      if (op.kind == OpKind::Mkdir && op.dir >= dirs.size()) {
        problems.push_back("rank " + std::to_string(r) + " references invalid dir id " +
                           std::to_string(op.dir));
      }
      if ((op.kind == OpKind::Write || op.kind == OpKind::Read) && op.size == 0) {
        problems.push_back("rank " + std::to_string(r) + " has zero-size I/O op");
      }
      if (op.kind == OpKind::Compute && op.seconds < 0.0) {
        problems.push_back("rank " + std::to_string(r) + " has negative compute time");
      }
    }
  }
  for (const FileDecl& f : files) {
    if (f.dir >= dirs.size()) {
      problems.push_back("file '" + f.name + "' references invalid dir id " +
                         std::to_string(f.dir));
    }
  }
  return problems;
}

}  // namespace stellar::pfs

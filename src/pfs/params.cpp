#include "pfs/params.hpp"

#include <algorithm>
#include <array>
#include <functional>

#include "util/strings.hpp"

namespace stellar::pfs {

namespace {

struct FieldDescriptor {
  const char* name;
  std::int64_t PfsConfig::*field;
};

constexpr std::array<FieldDescriptor, 13> kFields{{
    {"lov.stripe_count", &PfsConfig::stripe_count},
    {"lov.stripe_size", &PfsConfig::stripe_size},
    {"osc.max_rpcs_in_flight", &PfsConfig::osc_max_rpcs_in_flight},
    {"osc.max_pages_per_rpc", &PfsConfig::osc_max_pages_per_rpc},
    {"osc.max_dirty_mb", &PfsConfig::osc_max_dirty_mb},
    {"llite.max_read_ahead_mb", &PfsConfig::llite_max_read_ahead_mb},
    {"llite.max_read_ahead_per_file_mb", &PfsConfig::llite_max_read_ahead_per_file_mb},
    {"llite.max_read_ahead_whole_mb", &PfsConfig::llite_max_read_ahead_whole_mb},
    {"llite.statahead_max", &PfsConfig::llite_statahead_max},
    {"mdc.max_rpcs_in_flight", &PfsConfig::mdc_max_rpcs_in_flight},
    {"mdc.max_mod_rpcs_in_flight", &PfsConfig::mdc_max_mod_rpcs_in_flight},
    {"ldlm.lru_size", &PfsConfig::ldlm_lru_size},
    {"ldlm.lru_max_age", &PfsConfig::ldlm_lru_max_age},
}};

const FieldDescriptor* findField(std::string_view name) {
  for (const auto& fd : kFields) {
    if (name == fd.name) {
      return &fd;
    }
  }
  return nullptr;
}

}  // namespace

bool PfsConfig::set(std::string_view name, std::int64_t value) {
  const FieldDescriptor* fd = findField(name);
  if (fd == nullptr) {
    return false;
  }
  this->*(fd->field) = value;
  return true;
}

std::optional<std::int64_t> PfsConfig::get(std::string_view name) const {
  const FieldDescriptor* fd = findField(name);
  if (fd == nullptr) {
    return std::nullopt;
  }
  return this->*(fd->field);
}

const std::vector<std::string>& PfsConfig::tunableNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.reserve(kFields.size());
    for (const auto& fd : kFields) {
      out.emplace_back(fd.name);
    }
    return out;
  }();
  return names;
}

util::Json PfsConfig::toJson() const {
  util::Json obj = util::Json::makeObject();
  for (const auto& fd : kFields) {
    obj.set(fd.name, util::Json{this->*(fd.field)});
  }
  obj.set("osc.checksums", util::Json{osc_checksums});
  return obj;
}

PfsConfig PfsConfig::fromJson(const util::Json& json) {
  PfsConfig cfg;
  for (const auto& [key, value] : json.asObject()) {
    if (key == "osc.checksums") {
      cfg.osc_checksums = value.asBool();
      continue;
    }
    if (!cfg.set(key, value.asInt())) {
      throw util::JsonError("unknown parameter in config JSON: " + key);
    }
  }
  return cfg;
}

std::string PfsConfig::diffAgainst(const PfsConfig& base) const {
  std::vector<std::string> changes;
  for (const auto& fd : kFields) {
    const std::int64_t before = base.*(fd.field);
    const std::int64_t after = this->*(fd.field);
    if (before != after) {
      changes.push_back(std::string{fd.name} + ": " + std::to_string(before) +
                        " -> " + std::to_string(after));
    }
  }
  return util::join(changes, ", ");
}

std::optional<ParamBounds> paramBounds(std::string_view name, const PfsConfig& cfg,
                                       const BoundsContext& ctx) {
  // Dependent bounds follow the Lustre manual's documented constraints;
  // the offline extractor re-derives these as `expression` strings and the
  // online tuner evaluates them against the same facts (§4.2.2).
  if (name == "lov.stripe_count") {
    return ParamBounds{-1, ctx.ostCount};
  }
  if (name == "lov.stripe_size") {
    return ParamBounds{64 * 1024, 4LL * 1024 * 1024 * 1024};
  }
  if (name == "osc.max_rpcs_in_flight") {
    return ParamBounds{1, 256};
  }
  if (name == "osc.max_pages_per_rpc") {
    return ParamBounds{16, 4096};  // 64 KiB .. 16 MiB payload
  }
  if (name == "osc.max_dirty_mb") {
    return ParamBounds{1, std::max<std::int64_t>(1, ctx.clientRamMb / 8)};
  }
  if (name == "llite.max_read_ahead_mb") {
    return ParamBounds{0, std::max<std::int64_t>(0, ctx.clientRamMb / 2)};
  }
  if (name == "llite.max_read_ahead_per_file_mb") {
    return ParamBounds{0, std::max<std::int64_t>(0, cfg.llite_max_read_ahead_mb / 2)};
  }
  if (name == "llite.max_read_ahead_whole_mb") {
    return ParamBounds{0, std::max<std::int64_t>(0, cfg.llite_max_read_ahead_per_file_mb)};
  }
  if (name == "llite.statahead_max") {
    return ParamBounds{0, 8192};
  }
  if (name == "mdc.max_rpcs_in_flight") {
    return ParamBounds{1, 256};
  }
  if (name == "mdc.max_mod_rpcs_in_flight") {
    return ParamBounds{1, std::max<std::int64_t>(1, cfg.mdc_max_rpcs_in_flight - 1)};
  }
  if (name == "ldlm.lru_size") {
    return ParamBounds{0, 10'000'000};
  }
  if (name == "ldlm.lru_max_age") {
    return ParamBounds{1, 86'400};
  }
  return std::nullopt;
}

std::vector<std::string> validateConfig(const PfsConfig& cfg, const BoundsContext& ctx) {
  std::vector<std::string> violations;
  for (const std::string& name : PfsConfig::tunableNames()) {
    const auto bounds = paramBounds(name, cfg, ctx);
    const auto value = cfg.get(name);
    if (!bounds || !value) {
      continue;
    }
    if (*value < bounds->min || *value > bounds->max) {
      violations.push_back(name + "=" + std::to_string(*value) + " outside [" +
                           std::to_string(bounds->min) + ", " +
                           std::to_string(bounds->max) + "]");
    }
  }
  // stripe_count = 0 is not meaningful (Lustre treats 0 as "inherit"; the
  // simulator requires an explicit count or -1).
  if (cfg.stripe_count == 0) {
    violations.push_back("lov.stripe_count=0 is not a valid explicit layout");
  }
  return violations;
}

PfsConfig clampConfig(PfsConfig cfg, const BoundsContext& ctx) {
  // Clamp independent parameters first, then dependent ones so their
  // bounds see the clamped independents.
  static const std::vector<std::string> order = {
      "lov.stripe_count",
      "lov.stripe_size",
      "osc.max_rpcs_in_flight",
      "osc.max_pages_per_rpc",
      "osc.max_dirty_mb",
      "llite.max_read_ahead_mb",
      "llite.max_read_ahead_per_file_mb",
      "llite.max_read_ahead_whole_mb",
      "llite.statahead_max",
      "mdc.max_rpcs_in_flight",
      "mdc.max_mod_rpcs_in_flight",
      "ldlm.lru_size",
      "ldlm.lru_max_age",
  };
  for (const std::string& name : order) {
    const auto bounds = paramBounds(name, cfg, ctx);
    const auto value = cfg.get(name);
    if (!bounds || !value) {
      continue;
    }
    const std::int64_t clamped = std::clamp(*value, bounds->min, bounds->max);
    (void)cfg.set(name, clamped);
  }
  if (cfg.stripe_count == 0) {
    cfg.stripe_count = 1;
  }
  return cfg;
}

}  // namespace stellar::pfs

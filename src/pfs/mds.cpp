#include "pfs/mds.hpp"

#include <algorithm>
#include <utility>

#include "faults/fault_injector.hpp"

namespace stellar::pfs {

const char* metaOpName(MetaOpKind kind) noexcept {
  switch (kind) {
    case MetaOpKind::Create: return "create";
    case MetaOpKind::Open: return "open";
    case MetaOpKind::Stat: return "stat";
    case MetaOpKind::Unlink: return "unlink";
    case MetaOpKind::Mkdir: return "mkdir";
    case MetaOpKind::Lock: return "lock";
    case MetaOpKind::Close: return "close";
  }
  return "?";
}

MdsModel::MdsModel(sim::SimEngine& engine, const ClusterSpec& cluster,
                   std::uint64_t seed)
    : engine_(engine), cluster_(cluster),
      threads_(engine, "mds.threads", cluster.mds.serviceThreads),
      rng_(util::mix64(seed, 0x4D45D5ULL)) {}

double MdsModel::baseCost(MetaOpKind kind) const noexcept {
  const MdsSpec& mds = cluster_.mds;
  switch (kind) {
    case MetaOpKind::Create: return mds.createCost;
    case MetaOpKind::Open: return mds.openCost;
    case MetaOpKind::Stat: return mds.statCost;
    case MetaOpKind::Unlink: return mds.unlinkCost;
    case MetaOpKind::Mkdir: return mds.mkdirCost;
    case MetaOpKind::Lock: return mds.lockCost;
    case MetaOpKind::Close: return mds.openCost * 0.5;
  }
  return mds.statCost;
}

void MdsModel::submit(MetaOpKind kind, std::uint32_t stripeCount,
                      sim::Callback onDone) {
  ++opsServed_;
  double service = baseCost(kind);
  // Creating / destroying a striped file touches one object per stripe
  // target; the MDT orchestrates those OST object operations.
  if (kind == MetaOpKind::Create && stripeCount > 1) {
    service *= 1.0 + 0.60 * static_cast<double>(stripeCount - 1);
  }
  if (kind == MetaOpKind::Unlink && stripeCount > 1) {
    service *= 1.0 + 0.30 * static_cast<double>(stripeCount - 1);
  }
  service += cluster_.mds.congestionPenalty *
             static_cast<double>(std::min<std::size_t>(threads_.queuedRequests(), 32));
  service *= rng_.uniform(0.9, 1.1);
  if (faults_ != nullptr) {
    service *= faults_->mdsSlowdown();
  }
  threads_.submit(service, std::move(onDone));
}

}  // namespace stellar::pfs

#include "pfs/client.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>

#include "faults/fault_injector.hpp"

namespace stellar::pfs {

namespace {

/// Extent-lock conflict probability scale for shared-file writes.
constexpr double kConflictAlphaRandom = 0.25;
constexpr double kConflictAlphaSequential = 0.04;

/// Upper bound on statahead scan length (safety, not a tunable).
constexpr std::size_t kMaxScanLength = 1 << 20;

/// Stream tag for the per-node extent-conflict RNGs.
constexpr std::uint64_t kNodeRngTag = 0xC11E27ULL;

using DoneFn = std::shared_ptr<std::function<void()>>;

DoneFn wrap(std::function<void()> fn) {
  return std::make_shared<std::function<void()>>(std::move(fn));
}

}  // namespace

ClientRuntime::ClientRuntime(sim::SimEngine& engine, const ClusterSpec& cluster,
                             const PfsConfig& config, const JobSpec& job,
                             obs::Tracer* tracer, const faults::FaultInjector* faults,
                             RunScope scope)
    : engine_(engine), cluster_(cluster), config_(config), job_(job), tracer_(tracer),
      faults_(faults), traceOn_(obs::tracing(tracer)), scope_(scope),
      totalOsts_(cluster.totalOsts()),
      osts_(engine, cluster_, cluster.totalOsts(), scope.ostOffset, scope.runSeed),
      mds_(engine, cluster_, util::mix64(scope.runSeed, scope.ostOffset)),
      oscFlow_(engine, static_cast<std::size_t>(cluster.clientNodes) * cluster.totalOsts(),
               static_cast<std::uint32_t>(config.osc_max_rpcs_in_flight)) {
  osts_.attachFaults(faults_);
  mds_.attachFaults(faults_);

  const std::size_t lanes = static_cast<std::size_t>(cluster.clientNodes) * totalOsts_;
  dirty_.configure(lanes,
                   static_cast<std::uint64_t>(config_.osc_max_dirty_mb) * util::kMiB);
  writeback_.configure(lanes);

  readaKnobs_.clientBudgetBytes =
      static_cast<std::uint64_t>(config_.llite_max_read_ahead_mb) * util::kMiB;
  readaKnobs_.perFileBytes =
      static_cast<std::uint64_t>(config_.llite_max_read_ahead_per_file_mb) *
      util::kMiB;
  readaKnobs_.wholeFileBytes =
      static_cast<std::uint64_t>(config_.llite_max_read_ahead_whole_mb) *
      util::kMiB;
  readaKnobs_.alignBytes = rpcBytes();

  const std::uint64_t nodeStreamSeed = util::mix64(scope.runSeed, kNodeRngTag);
  nodeRng_.reserve(cluster.clientNodes);
  for (std::uint32_t n = 0; n < cluster.clientNodes; ++n) {
    nodeRng_.emplace_back(util::mix64(nodeStreamSeed, scope.nodeOffset + n));
  }

  nodes_.resize(cluster.clientNodes);
  for (std::uint32_t n = 0; n < cluster.clientNodes; ++n) {
    NodeState& node = nodes_[n];
    node.nic = std::make_unique<sim::ServiceCenter>(engine_, "client" + std::to_string(n) + ".nic", 1);
    node.mdcLimiter = std::make_unique<sim::FlowLimiter>(
        engine_, static_cast<std::uint32_t>(config_.mdc_max_rpcs_in_flight));
    node.modLimiter = std::make_unique<sim::FlowLimiter>(
        engine_, static_cast<std::uint32_t>(config_.mdc_max_mod_rpcs_in_flight));
    node.locks.configure(static_cast<std::size_t>(config_.ldlm_lru_size),
                         static_cast<double>(config_.ldlm_lru_max_age));
    node.locks.setEvictionHandler(
        [&node](FileId file) { node.pageValid.erase(file); });
    node.readahead.setBudget(static_cast<std::uint64_t>(config_.llite_max_read_ahead_mb) *
                             util::kMiB);
  }

  const std::uint32_t rankCount = job.rankCount();
  ranks_.resize(rankCount);
  for (std::uint32_t r = 0; r < rankCount; ++r) {
    ranks_[r].id = r;
    // Block distribution of ranks over nodes, as mpirun -bynode would not;
    // IOR-style launches place consecutive ranks on the same node.
    ranks_[r].node = r / std::max<std::uint32_t>(1, cluster.ranksPerNode) %
                     cluster.clientNodes;
  }

  files_.resize(job.files.size());
  for (FileId f = 0; f < files_.size(); ++f) {
    files_[f].layout = makeLayout(f);
  }
  fileStats_.resize(job.files.size());
  rankStats_.resize(rankCount);
}

ClientRuntime::~ClientRuntime() = default;

FileLayout ClientRuntime::makeLayout(FileId file) const {
  FileLayout layout;
  const std::uint32_t totalOsts = cluster_.totalOsts();
  const std::int64_t requested = config_.stripe_count;
  layout.stripeCount = requested < 0
                           ? totalOsts
                           : static_cast<std::uint32_t>(std::clamp<std::int64_t>(
                                 requested, 1, totalOsts));
  layout.stripeSize = static_cast<std::uint64_t>(std::max<std::int64_t>(
      config_.stripe_size, 64 * 1024));
  // Lustre's allocator picks starting OSTs by weighted free-space/QoS, not
  // a perfect round robin; with few files the resulting placement skew is
  // real and is one reason wider striping helps file-per-process workloads.
  // A hash reproduces that skew deterministically.
  layout.firstOst = static_cast<std::uint32_t>(util::mix64(file, 0x057A11) % totalOsts);
  layout.totalOsts = totalOsts;
  return layout;
}

std::uint64_t ClientRuntime::rpcBytes() const noexcept {
  return static_cast<std::uint64_t>(std::max<std::int64_t>(config_.osc_max_pages_per_rpc, 1)) *
         util::kPageSize;
}

void ClientRuntime::start() {
  for (RankState& rank : ranks_) {
    engine_.scheduleAt(0.0, [this, &rank] { advance(rank); });
  }
}

// ------------------------------------------------------------- execution --

void ClientRuntime::advance(RankState& r) {
  const std::vector<IoOp>& program = job_.ranks[r.id];
  while (r.ip < program.size()) {
    const IoOp& op = program[r.ip];

    // Blocking-capable ops first spend any accrued local CPU time so the
    // simulated clock reflects client-side work without per-op events.
    const bool mayBlock = op.kind != OpKind::Write && op.kind != OpKind::Close &&
                          op.kind != OpKind::Compute;
    if (mayBlock && r.accrued > 0.0) {
      const double dt = r.accrued;
      r.accrued = 0.0;
      engine_.scheduleAfter(dt, [this, &r] { advance(r); });
      return;
    }

    switch (op.kind) {
      case OpKind::Compute: {
        const double dt = op.seconds + r.accrued;
        r.accrued = 0.0;
        rankStats_[r.id].computeTime += op.seconds;
        ++r.ip;
        engine_.scheduleAfter(dt, [this, &r] { advance(r); });
        return;
      }
      case OpKind::Barrier: {
        blockRank(r, OpKind::Barrier);
        ++barrierArrived_;
        if (barrierArrived_ == ranks_.size()) {
          barrierArrived_ = 0;
          barrierTimes_.push_back(engine_.now());
          for (RankState& other : ranks_) {
            engine_.scheduleAfter(0.0, [this, &other] { resumeRank(other); });
          }
        }
        return;
      }
      case OpKind::Close: {
        execCloseLocal(r, op);
        ++r.ip;
        break;
      }
      case OpKind::Write: {
        if (!execWrite(r, op)) {
          return;
        }
        ++r.ip;
        break;
      }
      case OpKind::Read: {
        if (!execRead(r, op)) {
          return;
        }
        ++r.ip;
        break;
      }
      case OpKind::Stat: {
        if (!execStat(r, op)) {
          return;
        }
        ++r.ip;
        break;
      }
      case OpKind::Mkdir:
      case OpKind::Create:
      case OpKind::Open:
      case OpKind::Unlink:
      case OpKind::Fsync: {
        if (!execMeta(r, op)) {
          return;
        }
        ++r.ip;
        break;
      }
    }
  }

  if (r.accrued > 0.0) {
    const double dt = r.accrued;
    r.accrued = 0.0;
    engine_.scheduleAfter(dt, [this, &r] { advance(r); });
    return;
  }
  rankFinished(r);
}

void ClientRuntime::blockRank(RankState& r, OpKind kind) {
  r.blockStart = engine_.now();
  r.blockKind = kind;
}

void ClientRuntime::resumeRank(RankState& r) {
  const double delta = engine_.now() - r.blockStart;
  const IoOp& op = job_.ranks[r.id][r.ip];
  RankStats& rs = rankStats_[r.id];
  FileStats* fs = op.file != kInvalidFile && op.file < fileStats_.size()
                      ? &fileStats_[op.file]
                      : nullptr;

  switch (r.blockKind) {
    case OpKind::Read: {
      rs.readTime += delta;
      if (fs != nullptr) {
        fs->readTime += delta;
      }
      // Consume the cached portions of the range we just read.
      nodes_[r.node].readahead.consume(op.file, op.offset, op.offset + op.size);
      FdState& fd = r.fds[op.file];
      fd.lastReadEnd = op.offset + op.size;
      fd.everRead = true;
      break;
    }
    case OpKind::Write: {
      rs.writeTime += delta;
      if (fs != nullptr) {
        fs->writeTime += delta;
      }
      // Re-enter execWrite to finish remaining segments.
      advance(r);
      return;
    }
    case OpKind::Barrier:
      break;
    case OpKind::Fsync:
      rs.writeTime += delta;
      if (fs != nullptr) {
        fs->writeTime += delta;
      }
      break;
    default: {  // metadata kinds
      rs.metaTime += delta;
      if (fs != nullptr) {
        fs->metaTime += delta;
      }
      break;
    }
  }

  ++r.ip;
  advance(r);
}

void ClientRuntime::completeOneWait(RankState& r) {
  assert(r.pendingWaits > 0);
  if (--r.pendingWaits == 0) {
    resumeRank(r);
  }
}

void ClientRuntime::rankFinished(RankState& r) {
  if (r.done) {
    return;
  }
  r.done = true;
  rankStats_[r.id].finishTime = engine_.now();
  ++doneRanks_;
  if (doneRanks_ == ranks_.size()) {
    flushAllNodes();
  }
}

// -------------------------------------------------------------- metadata --

bool ClientRuntime::execMeta(RankState& r, const IoOp& op) {
  NodeState& node = nodes_[r.node];
  const double syscall = cluster_.clientSyscallCost;

  switch (op.kind) {
    case OpKind::Mkdir: {
      blockRank(r, OpKind::Mkdir);
      r.pendingWaits = 1;
      submitMeta(r.node, MetaOpKind::Mkdir, 1, true, [this, &r] { completeOneWait(r); });
      return false;
    }
    case OpKind::Create: {
      FileState& f = files_[op.file];
      FileStats& fs = fileStats_[op.file];
      ++fs.creates;
      fs.rankMask |= 1ULL << (r.id % 64);
      f.layout = makeLayout(op.file);
      blockRank(r, OpKind::Create);
      r.pendingWaits = 1;
      submitMeta(r.node, MetaOpKind::Create, f.layout.stripeCount, true,
                 [this, &r, &f, file = op.file] {
                   f.exists = true;
                   cacheLock(ranks_[r.id].node, file);
                   NodeState& n = nodes_[r.node];
                   ++n.openCount[file];
                   r.fds[file].open = true;
                   completeOneWait(r);
                 });
      return false;
    }
    case OpKind::Open: {
      FileStats& fs = fileStats_[op.file];
      ++fs.opens;
      fs.rankMask |= 1ULL << (r.id % 64);
      if (lockCached(r.node, op.file)) {
        // Cached open lock: the open is satisfied from the client cache.
        r.accrued += syscall;
        ++node.openCount[op.file];
        r.fds[op.file].open = true;
        return true;
      }
      blockRank(r, OpKind::Open);
      r.pendingWaits = 1;
      submitMeta(r.node, MetaOpKind::Open, 1, false,
                 [this, &r, file = op.file, waitStart = engine_.now()] {
        noteLockWait(engine_.now() - waitStart);
        cacheLock(r.node, file);
        ++nodes_[r.node].openCount[file];
        r.fds[file].open = true;
        completeOneWait(r);
      });
      return false;
    }
    case OpKind::Unlink: {
      FileState& f = files_[op.file];
      FileStats& fs = fileStats_[op.file];
      ++fs.unlinks;
      fs.rankMask |= 1ULL << (r.id % 64);
      // Discard this node's pending dirty segments for the file.
      for (std::uint32_t ost = 0; ost < totalOsts_; ++ost) {
        const std::size_t l = lane(r.node, ost);
        const std::uint64_t discarded = writeback_.discardFile(l, op.file);
        if (discarded > 0) {
          dirty_.release(l, discarded);
          counters_.dirtyDiscardedBytes += discarded;
        }
      }
      for (auto& waiter : node.readahead.dropFile(op.file)) {
        engine_.scheduleAfter(0.0, [w = std::move(waiter)]() mutable { w(); });
      }
      node.locks.erase(op.file);
      node.pageValid.erase(op.file);
      blockRank(r, OpKind::Unlink);
      r.pendingWaits = 1;
      submitMeta(r.node, MetaOpKind::Unlink, f.layout.stripeCount, true,
                 [this, &r, &f] {
                   f.exists = false;
                   f.size = 0;
                   f.writerNodeMask = 0;
                   completeOneWait(r);
                 });
      return false;
    }
    case OpKind::Fsync: {
      FileStats& fs = fileStats_[op.file];
      ++fs.fsyncs;
      for (std::uint32_t ost = 0; ost < totalOsts_; ++ost) {
        flushPending(r.node, ost, op.file);
      }
      const auto it = node.flushInFlight.find(op.file);
      if (it == node.flushInFlight.end() || it->second == 0) {
        r.accrued += syscall;
        return true;
      }
      blockRank(r, OpKind::Fsync);
      r.pendingWaits = 1;
      node.fsyncWaiters[op.file].push_back([this, &r] { completeOneWait(r); });
      return false;
    }
    default:
      return true;
  }
}

bool ClientRuntime::execStat(RankState& r, const IoOp& op) {
  NodeState& node = nodes_[r.node];
  FileStats& fs = fileStats_[op.file];
  ++fs.stats;
  fs.rankMask |= 1ULL << (r.id % 64);

  // Valid cached lock => attributes served from the client cache.
  if (lockCached(r.node, op.file)) {
    r.accrued += cluster_.clientSyscallCost;
    return true;
  }

  if (config_.llite_statahead_max > 0) {
    // Consume a statahead entry if the pipeline has (or will have) one.
    const auto entry = r.statEntries.find(r.ip);
    if (entry != r.statEntries.end()) {
      if (entry->second) {  // ready
        ++counters_.stataheadServed;
        r.statEntries.erase(entry);
        r.accrued += cluster_.clientSyscallCost;
        return true;
      }
      // In flight: wait for it.
      blockRank(r, OpKind::Stat);
      r.waitingOnStat = r.ip;
      return false;
    }
    if (r.scan && r.ip >= r.scan->nextToIssue && r.ip < r.scan->endIndex) {
      // The rank outran the statahead pipeline (possible under reordered
      // completions); skip the pipeline for this entry and stat it
      // synchronously, as the real statahead thread would be bypassed.
      r.scan->nextToIssue = r.ip + 1;
    } else {
      maybeStartScan(r);
    }
    const auto started = r.statEntries.find(r.ip);
    if (started != r.statEntries.end()) {
      if (started->second) {
        ++counters_.stataheadServed;
        r.statEntries.erase(started);
        r.accrued += cluster_.clientSyscallCost;
        return true;
      }
      blockRank(r, OpKind::Stat);
      r.waitingOnStat = r.ip;
      return false;
    }
  }

  // Plain synchronous stat RPC.
  blockRank(r, OpKind::Stat);
  r.pendingWaits = 1;
  (void)node;
  submitMeta(r.node, MetaOpKind::Stat, 1, false,
             [this, &r, file = op.file, waitStart = engine_.now()] {
    noteLockWait(engine_.now() - waitStart);
    cacheLock(r.node, file);
    completeOneWait(r);
  });
  return false;
}

void ClientRuntime::maybeStartScan(RankState& r) {
  const std::vector<IoOp>& program = job_.ranks[r.id];
  // A scan starts when at least two consecutive Stat ops lie ahead
  // (the statahead thread triggers on a detected stat pattern).
  if (r.ip + 1 >= program.size() || program[r.ip + 1].kind != OpKind::Stat) {
    return;
  }
  std::size_t end = r.ip;
  while (end < program.size() && program[end].kind == OpKind::Stat &&
         end - r.ip < kMaxScanLength) {
    ++end;
  }
  r.scan = StataheadScan{r.ip, end, 0};
  pumpStatahead(r);
}

void ClientRuntime::pumpStatahead(RankState& r) {
  if (!r.scan) {
    return;
  }
  StataheadScan& scan = *r.scan;
  const std::vector<IoOp>& program = job_.ranks[r.id];
  const auto window = static_cast<std::uint32_t>(config_.llite_statahead_max);
  while (scan.inFlight < window && scan.nextToIssue < scan.endIndex) {
    const std::size_t idx = scan.nextToIssue++;
    const FileId file = program[idx].file;
    if (nodes_[r.node].locks.touch(file, engine_.now())) {
      // Already covered by a cached lock; mark ready with no RPC.
      ++counters_.lockHits;
      r.statEntries[idx] = true;
      continue;
    }
    ++counters_.lockMisses;
    r.statEntries[idx] = false;
    ++scan.inFlight;
    submitMeta(r.node, MetaOpKind::Stat, 1, false, [this, &r, idx, file] {
      cacheLock(r.node, file);
      auto it = r.statEntries.find(idx);
      if (it != r.statEntries.end()) {
        it->second = true;
      }
      if (r.scan) {
        --r.scan->inFlight;
        if (r.scan->nextToIssue >= r.scan->endIndex && r.scan->inFlight == 0) {
          r.scan.reset();
        }
      }
      // Refill the pipeline *before* waking the rank so the rank never
      // outruns the statahead window on resume.
      pumpStatahead(r);
      if (r.waitingOnStat && *r.waitingOnStat == idx) {
        r.waitingOnStat.reset();
        ++counters_.stataheadServed;
        r.statEntries.erase(idx);
        resumeRank(r);
      }
    });
  }
  if (r.scan && scan.nextToIssue >= scan.endIndex && scan.inFlight == 0) {
    r.scan.reset();
  }
}

// ------------------------------------------------------------- delivery --

void ClientRuntime::failRun(std::string reason) {
  if (!failed_) {
    failed_ = true;
    failureReason_ = std::move(reason);
  }
}

void ClientRuntime::deliverRpc(RpcDelivery d) {
  // Fast path: no fault plan attached. Degenerates to the pre-fault event
  // chain (deliver invokes complete directly), so runs without faults are
  // bit-identical to the fault-layer-free simulator.
  if (faults_ == nullptr) {
    d.deliver(std::move(d.complete));
    return;
  }
  const bool down =
      d.ost >= 0 && faults_->ostDown(static_cast<std::size_t>(d.ost));
  if (!down && !faults_->sampleRpcDrop()) {
    const double stall = faults_->rpcStallSeconds();
    if (stall <= 0.0) {
      d.deliver(std::move(d.complete));
    } else {
      // Stall windows delay the delivery launch (slow wire, not loss).
      engine_.scheduleAfter(stall, [d = std::move(d)]() mutable {
        d.deliver(std::move(d.complete));
      });
    }
    return;
  }

  // Lost delivery: the client notices at rpcTimeout, then backs off
  // exponentially (capped at 8x) before redelivering.
  ++counters_.rpcTimeouts;
  const double timeout = cluster_.network.rpcTimeout;
  if (d.attempt >= cluster_.network.rpcMaxRetries) {
    ++counters_.rpcGaveUp;
    failRun("rpc to " + (d.ost >= 0 ? "ost " + std::to_string(d.ost) : std::string{"mds"}) +
            " gave up after " + std::to_string(d.attempt + 1) + " attempts at t=" +
            std::to_string(engine_.now()));
    if (traceOn_) {
      tracer_->instant("rpc", "gave-up",
                       {{"ost", util::Json(static_cast<std::int64_t>(d.ost))},
                        {"sim_time", util::Json(engine_.now())}});
    }
    // Completing anyway releases limiters/budgets and wakes waiters: the
    // run drains and reports Failed instead of deadlocking.
    engine_.scheduleAfter(timeout, std::move(d.complete));
    return;
  }
  ++counters_.rpcRetries;
  if (traceOn_) {
    tracer_->instant("rpc", "retry",
                     {{"ost", util::Json(static_cast<std::int64_t>(d.ost))},
                      {"attempt", util::Json(static_cast<std::int64_t>(d.attempt + 1))},
                      {"sim_time", util::Json(engine_.now())}});
  }
  const double backoff =
      std::min(timeout * static_cast<double>(1ULL << std::min<std::uint32_t>(d.attempt, 3)),
               8.0 * timeout);
  ++d.attempt;
  engine_.scheduleAfter(timeout + backoff, [this, d = std::move(d)]() mutable {
    deliverRpc(std::move(d));
  });
}

void ClientRuntime::submitMeta(std::uint32_t nodeIdx, MetaOpKind kind,
                               std::uint32_t stripeCount, bool modifying,
                               std::function<void()> onDone) {
  ++counters_.metaRpcs;
  if (traceOn_) {
    tracer_->instant("rpc", std::string("meta:") + metaOpName(kind),
                     {{"sim_time", util::Json(engine_.now())}});
  }
  NodeState& node = nodes_[nodeIdx];
  const double latency = cluster_.network.messageLatency;
  const DoneFn done = wrap(std::move(onDone));

  const auto issue = [this, &node, kind, stripeCount, modifying, latency, done] {
    node.mdcLimiter->acquire([this, &node, kind, stripeCount, modifying, latency, done] {
      RpcDelivery d;
      d.ost = -1;  // MDS target
      d.deliver = [this, kind, stripeCount, latency](sim::Callback served) {
        engine_.scheduleAfter(latency, [this, kind, stripeCount, latency,
                                        served = std::move(served)]() mutable {
          mds_.submit(kind, stripeCount,
                      [this, latency, served = std::move(served)]() mutable {
            engine_.scheduleAfter(latency, std::move(served));
          });
        });
      };
      d.complete = sim::Callback{engine_.arena(), [&node, modifying, done] {
        node.mdcLimiter->release();
        if (modifying) {
          node.modLimiter->release();
        }
        (*done)();
      }};
      deliverRpc(std::move(d));
    });
  };

  if (modifying) {
    node.modLimiter->acquire(issue);
  } else {
    issue();
  }
}

// ------------------------------------------------------------------ data --

bool ClientRuntime::execWrite(RankState& r, const IoOp& op) {
  FileState& f = files_[op.file];
  FileStats& fs = fileStats_[op.file];

  if (!r.segmentsValid) {
    r.segments = mapExtent(f.layout, op.offset, op.size);
    r.segIndex = 0;
    r.segmentsValid = true;

    ++fs.writeOps;
    fs.bytesWritten += op.size;
    fs.recordAccess(op.size);
    fs.minAccess = std::min(fs.minAccess, op.size);
    fs.maxAccess = std::max(fs.maxAccess, op.size);
    fs.maxOffset = std::max(fs.maxOffset, op.offset + op.size);
    fs.rankMask |= 1ULL << (r.id % 64);
    rankStats_[r.id].bytesWritten += op.size;

    FdState& fd = r.fds[op.file];
    const bool sequential =
        (op.offset == fd.lastWriteEnd && fd.lastWriteEnd != 0) || op.offset == 0;
    if (sequential) {
      ++fs.seqWrites;
    }
    fd.lastWriteEnd = op.offset + op.size;

    double cost = cluster_.clientSyscallCost;
    if (config_.osc_checksums) {
      cost += cluster_.checksumCostPerByte * static_cast<double>(op.size);
    }
    r.accrued += cost;
    rankStats_[r.id].writeTime += cost;
    fs.writeTime += cost;

    // Extent-lock conflicts on shared files written from several nodes.
    const std::uint64_t nodeBit = 1ULL << r.node;
    const std::uint64_t others = f.writerNodeMask & ~nodeBit;
    f.writerNodeMask |= nodeBit;
    nodes_[r.node].pageValid.insert(op.file);
    f.size = std::max(f.size, op.offset + op.size);
    if (others != 0) {
      const int k = std::popcount(f.writerNodeMask);
      const double alpha = sequential ? kConflictAlphaSequential : kConflictAlphaRandom;
      const double p = alpha * static_cast<double>(k - 1) / static_cast<double>(k);
      if (nodeRng_[r.node].chance(p)) {
        ++counters_.extentConflicts;
        r.accrued += cluster_.extentLockConflictCost;
        rankStats_[r.id].writeTime += cluster_.extentLockConflictCost;
        fs.writeTime += cluster_.extentLockConflictCost;
      }
    }
  }

  while (r.segIndex < r.segments.size()) {
    const ObjectExtent& seg = r.segments[r.segIndex];
    const std::size_t l = lane(r.node, seg.ost);
    if (r.reservedSegment || dirty_.tryReserve(l, seg.length)) {
      r.reservedSegment = false;
      writeback_.append(l, op.file, seg.objectOffset, seg.length);
      ++r.segIndex;
      // Flush at the RPC coalescing threshold — or immediately when other
      // ranks are queued on this lane's dirty budget. Without the second
      // condition a rank admitted from the wait queue can park its segment
      // in the write-back bank forever (close never flushes), starving the
      // remaining waiters once its program ends: a real deadlock whenever
      // osc_max_dirty_mb is smaller than the RPC size.
      if (writeback_.pendingBytes(l) >= rpcBytes() || dirty_.waiterCount(l) > 0) {
        flushPending(r.node, seg.ost);
      }
      continue;
    }
    // No dirty budget: push current pending data out and wait for space.
    flushPending(r.node, seg.ost);
    blockRank(r, OpKind::Write);
    dirty_.waitForSpace(l, seg.length, [this, &r] {
      // The waiter's reservation is already charged; mark it so the
      // re-entered execWrite records the segment without re-reserving.
      r.reservedSegment = true;
      engine_.scheduleAfter(0.0, [this, &r] { resumeRank(r); });
    });
    return false;
  }

  r.segmentsValid = false;
  return true;
}

void ClientRuntime::flushPending(std::uint32_t nodeIdx, std::uint32_t ost, FileId onlyFile) {
  const std::size_t l = lane(nodeIdx, ost);
  (void)writeback_.drain(
      l, onlyFile != kInvalidFile, onlyFile, rpcBytes(),
      [this, nodeIdx, ost](FileId file, std::uint64_t objectOffset,
                           std::uint64_t bytes) {
        issueWriteRpc(nodeIdx, ost, file, objectOffset, bytes);
      });
}

void ClientRuntime::flushAllNodes() {
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    for (std::uint32_t o = 0; o < totalOsts_; ++o) {
      flushPending(n, o);
    }
  }
}

void ClientRuntime::issueWriteRpc(std::uint32_t nodeIdx, std::uint32_t ost, FileId file,
                                  std::uint64_t objectOffset, std::uint64_t bytes) {
  ++counters_.dataRpcs;
  counters_.writeRpcBytes += bytes;
  const std::uint32_t globalOst = osts_.globalIndex(ost);
  if (traceOn_) {
    tracer_->instant("rpc", "write",
                     {{"ost", util::Json(static_cast<std::int64_t>(globalOst))},
                      {"bytes", util::Json(static_cast<std::int64_t>(bytes))},
                      {"sim_time", util::Json(engine_.now())}});
  }
  NodeState& node = nodes_[nodeIdx];
  ++node.flushInFlight[file];
  const std::size_t l = lane(nodeIdx, ost);
  const double latency = cluster_.network.messageLatency;
  const double wireTime = static_cast<double>(bytes) / cluster_.network.nicBandwidth;

  oscFlow_.acquire(l, [this, &node, l, globalOst, ost, file, objectOffset, bytes, latency,
                       wireTime] {
    RpcDelivery d;
    d.ost = static_cast<std::int32_t>(globalOst);
    // One delivery attempt: client NIC, request trip, OST bulk service,
    // reply trip. `served` is the completion below (or a retry shim).
    d.deliver = [this, &node, ost, file, objectOffset, bytes, latency,
                 wireTime](sim::Callback served) {
      node.nic->submit(wireTime, [this, ost, file, objectOffset, bytes, latency,
                                  served = std::move(served)]() mutable {
        engine_.scheduleAfter(latency, [this, ost, file, objectOffset, bytes, latency,
                                        served = std::move(served)]() mutable {
          osts_.submitBulk(ost, file, objectOffset, bytes, /*isWrite=*/true,
                           [this, latency, served = std::move(served)]() mutable {
            engine_.scheduleAfter(latency, std::move(served));
          });
        });
      });
    };
    d.complete = sim::Callback{engine_.arena(), [this, &node, l, file, bytes] {
      oscFlow_.release(l);
      dirty_.release(l, bytes);
      auto it = node.flushInFlight.find(file);
      if (it != node.flushInFlight.end() && it->second > 0) {
        --it->second;
        if (it->second == 0) {
          auto wit = node.fsyncWaiters.find(file);
          if (wit != node.fsyncWaiters.end()) {
            auto waiters = std::move(wit->second);
            node.fsyncWaiters.erase(wit);
            for (auto& w : waiters) {
              w();
            }
          }
        }
      }
    }};
    deliverRpc(std::move(d));
  });
}

void ClientRuntime::issueReadRpc(std::uint32_t nodeIdx, std::uint32_t ost, FileId file,
                                 std::uint64_t objectOffset, std::uint64_t bytes,
                                 std::function<void()> onDone) {
  ++counters_.dataRpcs;
  counters_.readRpcBytes += bytes;
  const std::uint32_t globalOst = osts_.globalIndex(ost);
  if (traceOn_) {
    tracer_->instant("rpc", "read",
                     {{"ost", util::Json(static_cast<std::int64_t>(globalOst))},
                      {"bytes", util::Json(static_cast<std::int64_t>(bytes))},
                      {"sim_time", util::Json(engine_.now())}});
  }
  NodeState& node = nodes_[nodeIdx];
  const std::size_t l = lane(nodeIdx, ost);
  const double latency = cluster_.network.messageLatency;
  const double wireTime = static_cast<double>(bytes) / cluster_.network.nicBandwidth;
  const DoneFn done = wrap(std::move(onDone));

  oscFlow_.acquire(l, [this, &node, l, globalOst, ost, file, objectOffset, bytes, latency,
                       wireTime, done] {
    RpcDelivery d;
    d.ost = static_cast<std::int32_t>(globalOst);
    d.deliver = [this, &node, ost, file, objectOffset, bytes, latency,
                 wireTime](sim::Callback served) {
      engine_.scheduleAfter(latency, [this, &node, ost, file, objectOffset, bytes,
                                      latency, wireTime,
                                      served = std::move(served)]() mutable {
        osts_.submitBulk(ost, file, objectOffset, bytes, /*isWrite=*/false,
                         [this, &node, wireTime, latency,
                          served = std::move(served)]() mutable {
          // Response data crosses the client NIC too.
          node.nic->submit(wireTime, [this, latency, served = std::move(served)]() mutable {
            engine_.scheduleAfter(latency, std::move(served));
          });
        });
      });
    };
    d.complete = sim::Callback{engine_.arena(), [this, l, done] {
      oscFlow_.release(l);
      (*done)();
    }};
    deliverRpc(std::move(d));
  });
}

bool ClientRuntime::execRead(RankState& r, const IoOp& op) {
  FileState& f = files_[op.file];
  FileStats& fs = fileStats_[op.file];
  NodeState& node = nodes_[r.node];
  FdState& fd = r.fds[op.file];

  ++fs.readOps;
  fs.bytesRead += op.size;
  fs.recordAccess(op.size);
  fs.minAccess = std::min(fs.minAccess, op.size);
  fs.maxAccess = std::max(fs.maxAccess, op.size);
  fs.rankMask |= 1ULL << (r.id % 64);
  rankStats_[r.id].bytesRead += op.size;

  const bool sequential = fd.everRead && op.offset == fd.lastReadEnd;
  if (sequential) {
    ++fs.seqReads;
  }

  double cost = cluster_.clientSyscallCost;
  if (config_.osc_checksums) {
    cost += cluster_.checksumCostPerByte * static_cast<double>(op.size);
  }
  r.accrued += cost;
  rankStats_[r.id].readTime += cost;
  fs.readTime += cost;

  // Page-cache hit: a file written solely by this node whose pages never
  // lost their protecting lock serves reads locally (Lustre drops the
  // pages when the DLM lock is evicted or expires).
  const std::uint64_t nodeBit = 1ULL << r.node;
  if (f.writerNodeMask == nodeBit && node.pageValid.contains(op.file) &&
      node.locks.touch(op.file, engine_.now())) {
    ++counters_.lockHits;
    counters_.pageCacheHitBytes += op.size;
    fd.lastReadEnd = op.offset + op.size;
    fd.everRead = true;
    return true;
  }

  const std::uint64_t readEnd = op.offset + op.size;
  const std::uint64_t knownSize = std::max(f.size, fs.maxOffset);

  // Hit accounting *before* this read triggers any new fetches.
  Coverage before = node.readahead.query(op.file, op.offset, readEnd);
  std::uint64_t missingBytes = 0;
  for (const auto& [b, e] : before.missing) {
    missingBytes += e - b;
  }
  counters_.readaheadHitBytes += op.size - std::min(op.size, missingBytes);
  counters_.readaheadMissBytes += missingBytes;

  // Advance this fd's sliding window. Whole-file mode additionally requires
  // the client to actually know the file size — a cached DLM lock, which an
  // open or a statahead scan primes (the statahead interaction).
  const bool sizeKnown = node.locks.contains(op.file, engine_.now());
  const ReadaDecision decision =
      advanceWindow(fd.ra, readaKnobs_, sequential, !fd.everRead, sizeKnown,
                    op.offset, readEnd, knownSize);
  switch (decision.event) {
    case ReadaEvent::Opened: ++readaOpened_; break;
    case ReadaEvent::Grown: ++readaGrown_; break;
    case ReadaEvent::Reset: ++readaReset_; break;
    case ReadaEvent::None: break;
  }
  if (decision.wantsPrefetch()) {
    prefetchRange(r, op.file, decision.prefetchBegin, decision.prefetchEnd);
  }

  // Whatever remains uncovered after prefetch goes out as sync reads.
  Coverage cov = node.readahead.query(op.file, op.offset, readEnd);
  std::uint32_t waits = 0;
  for (const auto& [b, e] : cov.missing) {
    for (const ObjectExtent& piece : mapExtent(f.layout, b, e - b)) {
      std::uint64_t pos = 0;
      while (pos < piece.length) {
        const std::uint64_t len = std::min(rpcBytes(), piece.length - pos);
        ++waits;
        issueReadRpc(r.node, piece.ost, op.file, piece.objectOffset + pos, len,
                     [this, &r] { completeOneWait(r); });
        pos += len;
      }
    }
  }
  for (CacheChunk* chunk : cov.pending) {
    ++waits;
    chunk->waiters.push_back([this, &r] { completeOneWait(r); });
  }

  if (waits == 0) {
    node.readahead.consume(op.file, op.offset, readEnd);
    fd.lastReadEnd = readEnd;
    fd.everRead = true;
    return true;
  }
  blockRank(r, OpKind::Read);
  r.pendingWaits = waits;
  return false;
}

void ClientRuntime::prefetchRange(RankState& r, FileId file, std::uint64_t begin,
                                  std::uint64_t end) {
  if (end <= begin) {
    return;
  }
  NodeState& node = nodes_[r.node];
  const FileState& f = files_[file];
  Coverage cov = node.readahead.query(file, begin, end);
  for (const auto& [b, e] : cov.missing) {
    for (const ObjectExtent& piece : mapExtent(f.layout, b, e - b)) {
      std::uint64_t pos = 0;
      while (pos < piece.length) {
        const std::uint64_t len = std::min(rpcBytes(), piece.length - pos);
        if (node.readahead.freeBudget() < len) {
          return;  // global readahead budget exhausted
        }
        const std::uint64_t chunkBegin = piece.fileOffset + pos;
        (void)node.readahead.insertPending(file, chunkBegin, chunkBegin + len);
        issueReadRpc(r.node, piece.ost, file, piece.objectOffset + pos, len,
                     [this, nodeIdx = r.node, file, chunkBegin] {
                       NodeState& n = nodes_[nodeIdx];
                       CacheChunk* chunk = n.readahead.find(file, chunkBegin);
                       if (chunk == nullptr) {
                         return;  // dropped (close/unlink) while in flight
                       }
                       n.readahead.markReady(chunk);
                       auto waiters = std::move(chunk->waiters);
                       chunk->waiters.clear();
                       for (auto& w : waiters) {
                         w();
                       }
                     });
        pos += len;
      }
    }
  }
}

// ------------------------------------------------------------------ misc --

void ClientRuntime::execCloseLocal(RankState& r, const IoOp& op) {
  NodeState& node = nodes_[r.node];
  FileStats& fs = fileStats_[op.file];
  ++fs.closes;
  r.accrued += cluster_.clientSyscallCost;

  FdState& fd = r.fds[op.file];
  fd.open = false;
  fd.ra.close();

  auto it = node.openCount.find(op.file);
  if (it != node.openCount.end() && it->second > 0) {
    --it->second;
    if (it->second == 0) {
      for (auto& waiter : node.readahead.dropFile(op.file)) {
        engine_.scheduleAfter(0.0, [w = std::move(waiter)]() mutable { w(); });
      }
    }
  }
  // Note: close does NOT flush dirty data. Lustre's background writeout
  // period is far longer than these workloads; dirty pages stay cached
  // until budget pressure, fsync, or job end — and an unlink before that
  // simply discards them (which is why MDWorkbench is metadata-bound).
}

bool ClientRuntime::lockCached(std::uint32_t nodeIdx, FileId file) {
  const bool hit = nodes_[nodeIdx].locks.touch(file, engine_.now());
  if (hit) {
    ++counters_.lockHits;
  } else {
    ++counters_.lockMisses;
  }
  return hit;
}

void ClientRuntime::cacheLock(std::uint32_t nodeIdx, FileId file) {
  nodes_[nodeIdx].locks.insert(file, engine_.now());
}

void ClientRuntime::noteLockWait(double seconds) {
  lockWaitSeconds_ += seconds;
  ++lockWaits_;
  if (traceOn_) {
    tracer_->instant("lock", "dlm-wait", {{"seconds", util::Json(seconds)}});
  }
}

void ClientRuntime::flushObservability(obs::CounterRegistry& registry) const {
  const auto add = [&registry](const char* name, double value) {
    registry.counter(name).add(value);
  };
  add("pfs.rpc.data", static_cast<double>(counters_.dataRpcs));
  add("pfs.rpc.meta", static_cast<double>(counters_.metaRpcs));
  add("pfs.lock.hits", static_cast<double>(counters_.lockHits));
  add("pfs.lock.misses", static_cast<double>(counters_.lockMisses));
  add("pfs.lock.wait_seconds", lockWaitSeconds_);
  add("pfs.lock.waits", static_cast<double>(lockWaits_));
  add("pfs.cache.readahead_hit_bytes", static_cast<double>(counters_.readaheadHitBytes));
  add("pfs.cache.readahead_miss_bytes", static_cast<double>(counters_.readaheadMissBytes));
  add("pfs.cache.page_hit_bytes", static_cast<double>(counters_.pageCacheHitBytes));
  add("pfs.meta.statahead_served", static_cast<double>(counters_.stataheadServed));
  add("pfs.lock.extent_conflicts", static_cast<double>(counters_.extentConflicts));

  // Readahead window machine activity and the fate of every prefetched byte
  // (the same numbers RunAudit carries; INV-READA cross-checks both).
  std::uint64_t prefetched = 0;
  std::uint64_t consumed = 0;
  std::uint64_t discarded = 0;
  std::uint64_t resident = 0;
  for (const NodeState& node : nodes_) {
    prefetched += node.readahead.prefetchedBytes();
    consumed += node.readahead.consumedBytes();
    discarded += node.readahead.discardedBytes();
    resident += node.readahead.residentBytes();
  }
  add("pfs.reada.windows_opened", static_cast<double>(readaOpened_));
  add("pfs.reada.windows_grown", static_cast<double>(readaGrown_));
  add("pfs.reada.windows_reset", static_cast<double>(readaReset_));
  add("pfs.reada.prefetched_bytes", static_cast<double>(prefetched));
  add("pfs.reada.consumed_bytes", static_cast<double>(consumed));
  add("pfs.reada.discarded_bytes", static_cast<double>(discarded));
  add("pfs.reada.resident_bytes", static_cast<double>(resident));

  add("pfs.rpc.timeouts", static_cast<double>(counters_.rpcTimeouts));
  add("pfs.rpc.retries", static_cast<double>(counters_.rpcRetries));
  add("pfs.rpc.gave_up", static_cast<double>(counters_.rpcGaveUp));

  // Per-OST disk service split: positioning (seek/setup) vs serialized
  // media transfer. Their ratio is the seek-bound vs bandwidth-bound
  // signal a tuned configuration shifts.
  double seekTime = 0.0;
  double transferTime = 0.0;
  std::uint64_t seeks = 0;
  obs::Histogram& queueDepth = registry.histogram("pfs.ost.peak_queue");
  for (std::uint32_t o = 0; o < osts_.count(); ++o) {
    seekTime += osts_.positioningBusyTime(o);
    transferTime += osts_.transferBusyTime(o);
    seeks += osts_.seeks(o);
    queueDepth.observe(static_cast<double>(osts_.peakQueue(o)));
  }
  add("pfs.ost.seek_seconds", seekTime);
  add("pfs.ost.transfer_seconds", transferTime);
  add("pfs.ost.seeks", static_cast<double>(seeks));
  add("pfs.mds.ops", static_cast<double>(mds_.opsServed()));
  add("pfs.mds.busy_seconds", mds_.busyTime());
}

RunAudit ClientRuntime::audit() const {
  RunAudit a;
  a.osts.reserve(osts_.count());
  for (std::uint32_t i = 0; i < osts_.count(); ++i) {
    OstAudit o;
    o.rpcsServed = osts_.rpcsServed(i);
    o.bytesWritten = osts_.bytesWritten(i);
    o.bytesRead = osts_.bytesRead(i);
    o.seeks = osts_.seeks(i);
    o.positioningBusySeconds = osts_.positioningBusyTime(i);
    o.transferBusySeconds = osts_.transferBusyTime(i);
    o.peakQueue = osts_.peakQueue(i);
    a.osts.push_back(o);
  }
  a.dirtyBudgetBytes =
      static_cast<std::uint64_t>(config_.osc_max_dirty_mb) * util::kMiB;
  for (std::size_t l = 0; l < dirty_.laneCount(); ++l) {
    a.peakDirtyBytes = std::max(a.peakDirtyBytes, dirty_.peakDirtyBytes(l));
    a.maxDirtyReservationBytes =
        std::max(a.maxDirtyReservationBytes, dirty_.maxReservationBytes(l));
  }
  for (const NodeState& node : nodes_) {
    a.lockInserts += node.locks.inserts();
    a.lockEvictions += node.locks.evictions();
    a.lockResident += node.locks.size();
    a.readaPrefetchedBytes += node.readahead.prefetchedBytes();
    a.readaConsumedBytes += node.readahead.consumedBytes();
    a.readaDiscardedBytes += node.readahead.discardedBytes();
    a.readaResidentBytes += node.readahead.residentBytes();
  }
  a.readaWindowsOpened = readaOpened_;
  a.readaWindowsGrown = readaGrown_;
  a.readaWindowsReset = readaReset_;
  a.mdsOps = mds_.opsServed();
  a.mdsBusySeconds = mds_.busyTime();
  return a;
}

}  // namespace stellar::pfs

#include "pfs/layout.hpp"

#include <algorithm>

namespace stellar::pfs {

std::vector<ObjectExtent> mapExtent(const FileLayout& layout, std::uint64_t offset,
                                    std::uint64_t length) {
  std::vector<ObjectExtent> pieces;
  if (length == 0) {
    return pieces;
  }
  const std::uint64_t ss = layout.stripeSize;
  std::uint64_t pos = offset;
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const std::uint64_t stripe = pos / ss;
    const std::uint64_t withinStripe = pos % ss;
    const std::uint64_t pieceLen = std::min(remaining, ss - withinStripe);

    ObjectExtent piece;
    piece.ost = layout.ostForStripe(stripe);
    // Object-local layout: stripe column c of the file stores its stripes
    // back to back, so object offset = (stripe / stripeCount) * ss + within.
    piece.objectOffset = (stripe / layout.stripeCount) * ss + withinStripe;
    piece.length = pieceLen;
    piece.fileOffset = pos;
    pieces.push_back(piece);

    pos += pieceLen;
    remaining -= pieceLen;
  }
  return pieces;
}

std::uint64_t objectOffsetFor(const FileLayout& layout, std::uint64_t fileOffset) noexcept {
  const std::uint64_t stripe = fileOffset / layout.stripeSize;
  const std::uint64_t within = fileOffset % layout.stripeSize;
  return (stripe / layout.stripeCount) * layout.stripeSize + within;
}

}  // namespace stellar::pfs

// Pending-event schedulers for the discrete-event engine.
//
// Both schedulers order events by the strict total order (timestamp,
// insertion sequence) — same-timestamp events dispatch FIFO. Because the
// order is identical, a run produces bit-identical results regardless of
// which scheduler backs the engine; the calendar queue is purely a
// complexity/locality upgrade for datacenter-scale clusters.
//
// HeapScheduler: classic binary heap, O(log n) push/pop. Kept as the
// reference implementation and the baseline for bench/micro_engine.
//
// CalendarScheduler: calendar queue (Brown 1988). Events hash into
// bucket = day % bucketCount with day = floor(at / width); pop scans
// forward from the current day, picking the (at, seq)-minimum entry among
// those due in the first non-empty day window. Each bucket is kept as a
// binary min-heap in dispatch order — day is a monotone function of the
// timestamp, so the heap front is also the bucket's earliest-day entry.
// That makes the due-day probe O(1) per day and pop O(log bucket), which
// keeps clustered timestamps (thousands of federation cells doing the
// same thing at the same sim time) from degrading pops to linear scans.
// Amortized O(1) push/pop while the bucket width tracks the mean event
// spacing; the table resizes (and re-derives width from the live min/max
// span) as occupancy drifts. Days with no due event within a full
// rotation fall back to comparing every bucket's front — correct on
// sparse "overflow days", just slower.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"

namespace stellar::sim {

using SimTime = double;

struct Event {
  SimTime at = 0.0;
  std::uint64_t seq = 0;
  Callback cb;
};

/// Strict dispatch order: earlier timestamp first, insertion order breaking
/// ties. This is the determinism contract both schedulers implement.
[[nodiscard]] inline bool dispatchesBefore(const Event& a, const Event& b) noexcept {
  if (a.at != b.at) {
    return a.at < b.at;
  }
  return a.seq < b.seq;
}

class HeapScheduler {
 public:
  void push(Event event);
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// Next event in dispatch order; requires !empty().
  [[nodiscard]] const Event& top() const noexcept { return heap_.front(); }
  Event pop();

 private:
  std::vector<Event> heap_;
};

class CalendarScheduler {
 public:
  explicit CalendarScheduler(std::size_t initialBuckets = 64,
                             SimTime initialWidth = 1e-4);

  void push(Event event);
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Next event in dispatch order, or nullptr when empty. Non-const: the
  /// located position is cached until the next push/pop invalidates it.
  [[nodiscard]] const Event* peek();
  Event pop();

  [[nodiscard]] std::size_t bucketCount() const noexcept { return buckets_.size(); }
  [[nodiscard]] SimTime bucketWidth() const noexcept { return width_; }
  /// Pops that required the full-table fallback scan (telemetry).
  [[nodiscard]] std::uint64_t overflowScans() const noexcept { return overflowScans_; }

 private:
  struct Entry {
    std::uint64_t day = 0;
    Event event;
  };

  /// Bucket-heap comparator ("dispatches later" = heap-larger). Day is
  /// monotone in the timestamp, so ordering by (at, seq) alone also orders
  /// by (day, at, seq): the heap front is both the dispatch-order minimum
  /// and the earliest-day entry of its bucket.
  [[nodiscard]] static bool entryAfter(const Entry& a, const Entry& b) noexcept;

  [[nodiscard]] std::uint64_t dayOf(SimTime at) const noexcept;
  /// Finds the dispatch-order minimum (always its bucket's heap front) and
  /// caches the bucket index. Returns false when the queue is empty.
  bool locate();
  void rehash(std::size_t newBucketCount);

  /// Each bucket is a dispatch-order min-heap (std::push_heap/pop_heap).
  std::vector<std::vector<Entry>> buckets_;
  std::size_t size_ = 0;
  SimTime width_;
  /// Timestamp of the last popped event: the monotone lower bound for every
  /// live entry (the engine never schedules into the past). The forward
  /// scan starts at its day.
  SimTime floor_ = 0.0;
  std::uint64_t overflowScans_ = 0;
  bool cacheValid_ = false;
  std::size_t cacheBucket_ = 0;
};

}  // namespace stellar::sim

#include "sim/service_center.hpp"

#include <algorithm>
#include <utility>

namespace stellar::sim {

ServiceCenter::ServiceCenter(SimEngine& engine, std::string name, std::uint32_t servers)
    : engine_(engine), name_(std::move(name)), servers_(std::max<std::uint32_t>(1, servers)) {}

void ServiceCenter::submit(SimTime serviceTime, Callback onDone) {
  ++submitted_;
  if (serviceTime < 0.0) {
    serviceTime = 0.0;
  }
  if (busy_ < servers_) {
    startService(Request{serviceTime, std::move(onDone)});
  } else {
    waiting_.push_back(Request{serviceTime, std::move(onDone)});
    peakQueue_ = std::max(peakQueue_, waiting_.size());
  }
}

void ServiceCenter::startService(Request request) {
  ++busy_;
  busyTime_ += request.serviceTime;
  // Capture the completion by value; `this` outlives the engine run in all
  // usage (the PfsSimulator owns both engine and centers).
  engine_.scheduleAfter(request.serviceTime,
                        [this, onDone = std::move(request.onDone)]() mutable {
                          --busy_;
                          if (!waiting_.empty()) {
                            Request next = std::move(waiting_.front());
                            waiting_.pop_front();
                            startService(std::move(next));
                          }
                          if (onDone) {
                            onDone();
                          }
                        });
}

}  // namespace stellar::sim

#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <thread>

#include "util/rng.hpp"

namespace stellar::sim {

ShardedEngine::ShardedEngine(EngineOptions options) : options_(options) {
  const std::uint32_t count = std::max<std::uint32_t>(options.shards, 1);
  shards_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EngineOptions shardOptions = options;
    shardOptions.shards = 1;
    shardOptions.seed = util::mix64(options.seed, i);
    shards_.push_back(std::make_unique<SimEngine>(shardOptions));
  }
  // Worker threads are capped at the core count: shard count is a
  // partitioning choice (one shard per federation cell maximizes cache
  // locality — each queue drains to completion before the next), while
  // extra threads beyond the cores only add contention. parallelFor
  // load-balances the shards across whatever workers exist.
  const std::size_t workers = std::min<std::size_t>(
      count, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  if (workers > 1) {
    pool_ = std::make_unique<util::ThreadPool>(workers);
  }
}

void ShardedEngine::forEachParallel(const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      fn(i);
    }
    return;
  }
  pool_->parallelFor(shards_.size(), fn);
}

SimTime ShardedEngine::run() { return drive(std::nullopt); }

SimTime ShardedEngine::runUntil(SimTime limit) { return drive(limit); }

SimTime ShardedEngine::drive(std::optional<SimTime> limit) {
  if (options_.syncWindowSeconds > 0.0) {
    // Conservative lockstep: advance all shards window by window, where
    // each window starts at the globally minimal pending timestamp. Every
    // iteration dispatches at least the event defining that minimum, so
    // the loop terminates.
    while (true) {
      std::optional<SimTime> next;
      for (const std::unique_ptr<SimEngine>& shard : shards_) {
        const std::optional<SimTime> t = shard->nextEventTime();
        if (t.has_value() && (!next.has_value() || *t < *next)) {
          next = t;
        }
      }
      if (!next.has_value() || (limit.has_value() && *next > *limit)) {
        break;
      }
      SimTime horizon = *next + options_.syncWindowSeconds;
      if (limit.has_value()) {
        horizon = std::min(horizon, *limit);
      }
      forEachParallel([&](std::size_t i) { shards_[i]->drainUntil(horizon); });
    }
    if (limit.has_value()) {
      // Match SimEngine::runUntil clock semantics on drained shards.
      for (const std::unique_ptr<SimEngine>& shard : shards_) {
        shard->runUntil(*limit);
      }
    }
    return now();
  }
  forEachParallel([&](std::size_t i) {
    if (limit.has_value()) {
      shards_[i]->runUntil(*limit);
    } else {
      shards_[i]->run();
    }
  });
  return now();
}

bool ShardedEngine::empty() const noexcept {
  return std::all_of(shards_.begin(), shards_.end(),
                     [](const std::unique_ptr<SimEngine>& s) { return s->empty(); });
}

SimTime ShardedEngine::now() const noexcept {
  SimTime latest = 0.0;
  for (const std::unique_ptr<SimEngine>& shard : shards_) {
    latest = std::max(latest, shard->now());
  }
  return latest;
}

std::uint64_t ShardedEngine::eventsProcessed() const noexcept {
  std::uint64_t total = 0;
  for (const std::unique_ptr<SimEngine>& shard : shards_) {
    total += shard->eventsProcessed();
  }
  return total;
}

std::uint64_t ShardedEngine::openWindows() const noexcept {
  std::uint64_t total = 0;
  for (const std::unique_ptr<SimEngine>& shard : shards_) {
    total += shard->openWindows();
  }
  return total;
}

void ShardedEngine::cancelOpenWindows() {
  for (const std::unique_ptr<SimEngine>& shard : shards_) {
    shard->cancelOpenWindows();
  }
}

void ShardedEngine::attachObservability(obs::Tracer* tracer,
                                        obs::CounterRegistry* counters,
                                        std::uint64_t sampleEvery) noexcept {
  for (const std::unique_ptr<SimEngine>& shard : shards_) {
    shard->attachObservability(tracer, counters, sampleEvery);
  }
}

}  // namespace stellar::sim

// Arena-allocated event callbacks.
//
// Every simulated RPC crosses the event queue several times, and with
// std::function each crossing pays a heap allocation for the closure. A
// sim::Callback is a move-only type-erased callable with
//  * small-buffer inline storage for closures up to kInlineBytes,
//  * spill into a per-engine EventArena (bump-pointer blocks recycled
//    through size-class free lists; the arena resets per run) for larger
//    closures built on the engine's scheduling paths, and
//  * a plain-heap fallback for callbacks constructed without an arena.
//
// The tag (vtable pointer + storage discriminator) replaces std::function's
// manager machinery; dispatch is one indirect call either way, but
// construction and destruction stop touching the global allocator on the
// hot path.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace stellar::sim {

/// Bump-pointer arena for event closures. allocate/deallocate round sizes
/// up to 16-byte classes and recycle freed storage through per-class free
/// lists, so steady-state simulation reuses a small working set instead of
/// hammering malloc. Requests beyond the largest class fall through to the
/// global allocator (counted as spills). reset() drops everything back to
/// the first block between runs.
class EventArena {
 public:
  static constexpr std::size_t kGranularity = 16;
  static constexpr std::size_t kMaxClassBytes = 1024;

  explicit EventArena(std::size_t firstBlockBytes = 64 * 1024);
  ~EventArena();

  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  [[nodiscard]] void* allocate(std::size_t bytes);
  void deallocate(void* ptr, std::size_t bytes) noexcept;

  /// Returns the arena to its freshly-constructed state (first block kept).
  /// Callers must have destroyed every outstanding allocation.
  void reset() noexcept;

  /// Total bytes held in arena blocks (capacity, not live bytes).
  [[nodiscard]] std::size_t bytesReserved() const noexcept { return reserved_; }
  [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }
  /// Allocations beyond kMaxClassBytes, served by the global allocator.
  [[nodiscard]] std::uint64_t oversizedAllocations() const noexcept { return oversized_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kClassCount = kMaxClassBytes / kGranularity;

  [[nodiscard]] static std::size_t classIndex(std::size_t bytes) noexcept {
    return (bytes + kGranularity - 1) / kGranularity - 1;
  }

  void addBlock(std::size_t bytes);

  std::vector<std::pair<std::byte*, std::size_t>> blocks_;
  std::byte* bump_ = nullptr;
  std::size_t bumpLeft_ = 0;
  std::size_t nextBlockBytes_;
  std::size_t reserved_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t oversized_ = 0;
  FreeNode* freeLists_[kClassCount] = {};
};

class Callback;

/// Callables the scheduling templates accept: anything invocable with no
/// arguments except Callback itself (which has dedicated overloads) and
/// std::function<void()> (which must route to the deprecated overloads so
/// legacy call sites get their compile-time nudge).
template <typename F>
concept EventCallable =
    std::invocable<std::remove_cvref_t<F>&> &&
    !std::same_as<std::remove_cvref_t<F>, Callback> &&
    !std::same_as<std::remove_cvref_t<F>, std::function<void()>>;

/// Move-only type-erased void() callable with small-buffer + arena storage.
class Callback {
 public:
  /// Closures at or under this size (with fundamental alignment and a
  /// noexcept move) are stored inline; larger ones spill to the arena (or
  /// heap when constructed without one).
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <EventCallable F>
  explicit Callback(F&& fn) {
    emplace<std::decay_t<F>>(nullptr, std::forward<F>(fn));
  }

  template <EventCallable F>
  Callback(EventArena& arena, F&& fn) {
    emplace<std::decay_t<F>>(&arena, std::forward<F>(fn));
  }

  Callback(Callback&& other) noexcept { stealFrom(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      destroy();
      stealFrom(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { destroy(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Invokes the callable. The callable stays live until destruction, but
  /// the engine treats callbacks as one-shot: dispatch then destroy.
  void operator()() {
    vt_->invoke(storage());
  }

  /// True when the closure spilled out of the inline buffer (telemetry).
  [[nodiscard]] bool spilled() const noexcept { return vt_ != nullptr && !inline_; }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;  // inline storage only
    void (*destroy)(void*) noexcept;
    std::size_t size;
  };

  template <typename F>
  static const VTable* vtableFor() noexcept {
    static constexpr VTable vt{
        [](void* obj) { (*static_cast<F*>(obj))(); },
        [](void* from, void* to) noexcept {
          ::new (to) F(std::move(*static_cast<F*>(from)));
        },
        [](void* obj) noexcept { static_cast<F*>(obj)->~F(); },
        sizeof(F),
    };
    return &vt;
  }

  template <typename F, typename Arg>
  void emplace(EventArena* arena, Arg&& fn) {
    constexpr bool fitsInline = sizeof(F) <= kInlineBytes &&
                                alignof(F) <= alignof(std::max_align_t) &&
                                std::is_nothrow_move_constructible_v<F>;
    if constexpr (fitsInline) {
      ::new (static_cast<void*>(buffer_)) F(std::forward<Arg>(fn));
      inline_ = true;
    } else {
      void* mem = arena != nullptr ? arena->allocate(sizeof(F))
                                   : ::operator new(sizeof(F));
      try {
        ::new (mem) F(std::forward<Arg>(fn));
      } catch (...) {
        if (arena != nullptr) {
          arena->deallocate(mem, sizeof(F));
        } else {
          ::operator delete(mem);
        }
        throw;
      }
      out_ = mem;
      arena_ = arena;
      inline_ = false;
    }
    vt_ = vtableFor<F>();
  }

  [[nodiscard]] void* storage() noexcept {
    return inline_ ? static_cast<void*>(buffer_) : out_;
  }

  void destroy() noexcept {
    if (vt_ == nullptr) {
      return;
    }
    if (inline_) {
      vt_->destroy(buffer_);
    } else {
      vt_->destroy(out_);
      if (arena_ != nullptr) {
        arena_->deallocate(out_, vt_->size);
      } else {
        ::operator delete(out_);
      }
    }
    vt_ = nullptr;
    out_ = nullptr;
    arena_ = nullptr;
    inline_ = false;
  }

  void stealFrom(Callback& other) noexcept {
    vt_ = other.vt_;
    inline_ = other.inline_;
    if (vt_ != nullptr && inline_) {
      vt_->relocate(other.buffer_, buffer_);
      vt_->destroy(other.buffer_);
    } else {
      out_ = other.out_;
      arena_ = other.arena_;
    }
    other.vt_ = nullptr;
    other.out_ = nullptr;
    other.arena_ = nullptr;
    other.inline_ = false;
  }

  alignas(std::max_align_t) std::byte buffer_[kInlineBytes];
  void* out_ = nullptr;
  EventArena* arena_ = nullptr;
  const VTable* vt_ = nullptr;
  bool inline_ = false;
};

}  // namespace stellar::sim

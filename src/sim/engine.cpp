#include "sim/engine.hpp"

#include <utility>

namespace stellar::sim {

void SimEngine::scheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  queue_.push(Event{at, nextSeq_++, std::move(fn)});
}

void SimEngine::scheduleAfter(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    delay = 0.0;
  }
  scheduleAt(now_ + delay, std::move(fn));
}

SimTime SimEngine::run() {
  while (!queue_.empty()) {
    // The queue stores const refs; move the callable out before popping.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.fn();
  }
  return now_;
}

SimTime SimEngine::runUntil(SimTime limit) {
  while (!queue_.empty() && queue_.top().at <= limit) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.fn();
  }
  if (now_ < limit && queue_.empty()) {
    now_ = limit;
  }
  return now_;
}

}  // namespace stellar::sim

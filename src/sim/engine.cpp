#include "sim/engine.hpp"

#include <utility>

namespace stellar::sim {

const char* schedulerKindName(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::Heap:
      return "heap";
    case SchedulerKind::Calendar:
      return "calendar";
  }
  return "unknown";
}

SimEngine::SimEngine(EngineOptions options)
    : options_(options), arena_(options.arenaBytes), rng_(options.seed) {}

void SimEngine::pushEvent(SimTime at, Callback cb) {
  if (at < now_) {
    at = now_;
  }
  Event event{at, nextSeq_++, std::move(cb)};
  if (options_.scheduler == SchedulerKind::Heap) {
    heap_.push(std::move(event));
  } else {
    calendar_.push(std::move(event));
  }
}

const Event* SimEngine::peekEvent() {
  if (options_.scheduler == SchedulerKind::Heap) {
    return heap_.empty() ? nullptr : &heap_.top();
  }
  return calendar_.peek();
}

Event SimEngine::popEvent() {
  if (options_.scheduler == SchedulerKind::Heap) {
    return heap_.pop();
  }
  return calendar_.pop();
}

bool SimEngine::empty() const noexcept {
  return heap_.empty() && calendar_.empty();
}

std::size_t SimEngine::queueDepth() const noexcept {
  return heap_.size() + calendar_.size();
}

void SimEngine::scheduleAt(SimTime at, Callback cb) {
  pushEvent(at, std::move(cb));
}

void SimEngine::scheduleAfter(SimTime delay, Callback cb) {
  if (delay < 0.0) {
    delay = 0.0;
  }
  pushEvent(now_ + delay, std::move(cb));
}

void SimEngine::scheduleAt(SimTime at, std::function<void()> fn) {
  pushEvent(at, Callback{arena_, [fn = std::move(fn)] {
              if (fn) {
                fn();
              }
            }});
}

void SimEngine::scheduleAfter(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    delay = 0.0;
  }
  pushEvent(now_ + delay, Callback{arena_, [fn = std::move(fn)] {
              if (fn) {
                fn();
              }
            }});
}

void SimEngine::scheduleWindow(SimTime begin, SimTime end, Callback onOpen,
                               Callback onClose) {
  if (end < begin) {
    end = begin;
  }
  windows_.push_back(std::make_unique<WindowRecord>());
  WindowRecord* record = windows_.back().get();
  record->onClose = std::move(onClose);
  pushEvent(begin, Callback{arena_, [this, record, fn = std::move(onOpen)]() mutable {
              record->opened = true;
              ++openWindows_;
              if (fn) {
                fn();
              }
            }});
  pushEvent(end, Callback{arena_, [this, record] { closeWindow(*record); }});
}

void SimEngine::closeWindow(WindowRecord& record) {
  if (!record.opened || record.closed) {
    return;
  }
  record.closed = true;
  --openWindows_;
  if (record.onClose) {
    record.onClose();
  }
}

void SimEngine::cancelOpenWindows() {
  // Window creation order, so cancellation is as deterministic as the
  // close edges it replaces.
  for (const std::unique_ptr<WindowRecord>& record : windows_) {
    closeWindow(*record);
  }
}

std::optional<SimTime> SimEngine::nextEventTime() {
  const Event* next = peekEvent();
  if (next == nullptr) {
    return std::nullopt;
  }
  return next->at;
}

void SimEngine::noteDispatch() {
  // Sampled dispatch telemetry: a full span per event would swamp the
  // ring (runs dispatch millions), so every sampleEvery_-th dispatch
  // emits one instant carrying queue depth and simulated clock.
  if (sampleTick_ == 0 || --sampleTick_ != 0) {
    return;
  }
  sampleTick_ = sampleEvery_;
  if (obs::tracing(tracer_)) {
    tracer_->instant("sim", "dispatch",
                     {{"events", util::Json(static_cast<std::int64_t>(processed_))},
                      {"queue_depth", util::Json(static_cast<std::int64_t>(queueDepth()))},
                      {"sim_time", util::Json(now_)}});
  }
}

void SimEngine::finishDrain(obs::Tracer::Span& span, std::uint64_t dispatched) {
  if (span.active()) {
    span.arg("events", util::Json(static_cast<std::int64_t>(dispatched)));
    span.arg("sim_time", util::Json(now_));
  }
  if (counters_ != nullptr) {
    counters_->counter("sim.events_dispatched").add(static_cast<double>(dispatched));
    counters_->counter("sim.drains").add(1.0);
  }
}

SimTime SimEngine::run() {
  obs::Tracer::Span span = obs::beginSpan(tracer_, "sim", "event-loop");
  const std::uint64_t before = processed_;
  while (!empty()) {
    Event event = popEvent();
    now_ = event.at;
    ++processed_;
    noteDispatch();
    if (event.cb) {
      event.cb();
    }
  }
  finishDrain(span, processed_ - before);
  return now_;
}

SimTime SimEngine::runUntil(SimTime limit) {
  obs::Tracer::Span span = obs::beginSpan(tracer_, "sim", "event-loop-until");
  const std::uint64_t before = processed_;
  while (true) {
    const Event* next = peekEvent();
    if (next == nullptr || next->at > limit) {
      break;
    }
    Event event = popEvent();
    now_ = event.at;
    ++processed_;
    noteDispatch();
    if (event.cb) {
      event.cb();
    }
  }
  if (now_ < limit && empty()) {
    now_ = limit;
  }
  finishDrain(span, processed_ - before);
  return now_;
}

SimTime SimEngine::drainUntil(SimTime limit) {
  const std::uint64_t before = processed_;
  while (true) {
    const Event* next = peekEvent();
    if (next == nullptr || next->at > limit) {
      break;
    }
    Event event = popEvent();
    now_ = event.at;
    ++processed_;
    noteDispatch();
    if (event.cb) {
      event.cb();
    }
  }
  if (counters_ != nullptr && processed_ != before) {
    counters_->counter("sim.events_dispatched").add(static_cast<double>(processed_ - before));
  }
  return now_;
}

}  // namespace stellar::sim

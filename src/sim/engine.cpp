#include "sim/engine.hpp"

#include <utility>

namespace stellar::sim {

void SimEngine::scheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  queue_.push(Event{at, nextSeq_++, std::move(fn)});
}

void SimEngine::scheduleAfter(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    delay = 0.0;
  }
  scheduleAt(now_ + delay, std::move(fn));
}

void SimEngine::scheduleWindow(SimTime begin, SimTime end, std::function<void()> onOpen,
                               std::function<void()> onClose) {
  if (end < begin) {
    end = begin;
  }
  scheduleAt(begin, [this, fn = std::move(onOpen)] {
    ++openWindows_;
    if (fn) {
      fn();
    }
  });
  scheduleAt(end, [this, fn = std::move(onClose)] {
    --openWindows_;
    if (fn) {
      fn();
    }
  });
}

void SimEngine::noteDispatch() {
  // Sampled dispatch telemetry: a full span per event would swamp the
  // ring (runs dispatch millions), so every sampleEvery_-th dispatch
  // emits one instant carrying queue depth and simulated clock.
  if (sampleTick_ == 0 || --sampleTick_ != 0) {
    return;
  }
  sampleTick_ = sampleEvery_;
  if (obs::tracing(tracer_)) {
    tracer_->instant("sim", "dispatch",
                     {{"events", util::Json(static_cast<std::int64_t>(processed_))},
                      {"queue_depth", util::Json(static_cast<std::int64_t>(queue_.size()))},
                      {"sim_time", util::Json(now_)}});
  }
}

void SimEngine::finishDrain(obs::Tracer::Span& span, std::uint64_t dispatched) {
  if (span.active()) {
    span.arg("events", util::Json(static_cast<std::int64_t>(dispatched)));
    span.arg("sim_time", util::Json(now_));
  }
  if (counters_ != nullptr) {
    counters_->counter("sim.events_dispatched").add(static_cast<double>(dispatched));
    counters_->counter("sim.drains").add(1.0);
  }
}

SimTime SimEngine::run() {
  obs::Tracer::Span span = obs::beginSpan(tracer_, "sim", "event-loop");
  const std::uint64_t before = processed_;
  while (!queue_.empty()) {
    // The queue stores const refs; move the callable out before popping.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++processed_;
    noteDispatch();
    event.fn();
  }
  finishDrain(span, processed_ - before);
  return now_;
}

SimTime SimEngine::runUntil(SimTime limit) {
  obs::Tracer::Span span = obs::beginSpan(tracer_, "sim", "event-loop-until");
  const std::uint64_t before = processed_;
  while (!queue_.empty() && queue_.top().at <= limit) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++processed_;
    noteDispatch();
    event.fn();
  }
  if (now_ < limit && queue_.empty()) {
    now_ = limit;
  }
  finishDrain(span, processed_ - before);
  return now_;
}

}  // namespace stellar::sim

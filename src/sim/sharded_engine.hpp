// Partitioned discrete-event execution.
//
// A ShardedEngine owns N independent SimEngines and drives them on a
// util::ThreadPool. It is exact — not approximate — when the model
// partitioned across shards shares no mutable state, which is what the
// federated-cell cluster model (pfs::ClusterSpec::cells) guarantees: each
// cell has its own MDS, OSTs, clients, and fault windows, and all
// hot-path randomness is keyed by global component ids rather than drawn
// from a shared engine stream. Under that contract every shard's event
// sequence is independent of the grouping, so results are bit-identical
// for 1, 2, or 4 shards (the testkit ML-SHARD law enforces this).
//
// Two drive modes:
//  * free-run (syncWindowSeconds == 0): each shard drains to completion in
//    parallel — exact for shared-nothing shards;
//  * conservative lockstep (syncWindowSeconds > 0): shards advance in
//    global windows [T, T + window), where T is the minimum pending
//    timestamp across shards. No shard's clock outruns the horizon, so a
//    model with cross-shard interactions of latency >= window would also
//    stay exact. The PFS model does not need this today; the mode exists
//    for engine-level experiments and keeps the determinism argument
//    testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "util/thread_pool.hpp"

namespace stellar::sim {

class ShardedEngine {
 public:
  explicit ShardedEngine(EngineOptions options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shardCount() const noexcept { return shards_.size(); }
  [[nodiscard]] SimEngine& shard(std::size_t index) noexcept { return *shards_[index]; }

  /// Drains every shard; returns the maximum shard clock.
  SimTime run();

  /// Drains events with time <= limit on every shard; shard clocks advance
  /// to the limit like SimEngine::runUntil. Returns the maximum clock.
  SimTime runUntil(SimTime limit);

  [[nodiscard]] bool empty() const noexcept;
  /// Maximum shard clock.
  [[nodiscard]] SimTime now() const noexcept;
  /// Sum of shard event counts — invariant under shard grouping.
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept;
  [[nodiscard]] std::uint64_t openWindows() const noexcept;
  void cancelOpenWindows();

  /// Attaches shared sinks to every shard (both are thread-safe).
  void attachObservability(obs::Tracer* tracer, obs::CounterRegistry* counters,
                           std::uint64_t sampleEvery = 4096) noexcept;

 private:
  SimTime drive(std::optional<SimTime> limit);
  void forEachParallel(const std::function<void(std::size_t)>& fn);

  EngineOptions options_;
  std::vector<std::unique_ptr<SimEngine>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace stellar::sim

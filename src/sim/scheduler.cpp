#include "sim/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace stellar::sim {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

// Heap comparator: std::push_heap keeps the "largest" element at the front,
// so "larger" must mean "dispatches later".
bool dispatchesAfter(const Event& a, const Event& b) noexcept {
  return dispatchesBefore(b, a);
}

}  // namespace

void HeapScheduler::push(Event event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), dispatchesAfter);
}

Event HeapScheduler::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), dispatchesAfter);
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

bool CalendarScheduler::entryAfter(const Entry& a, const Entry& b) noexcept {
  return dispatchesBefore(b.event, a.event);
}

CalendarScheduler::CalendarScheduler(std::size_t initialBuckets, SimTime initialWidth)
    : buckets_(std::max(initialBuckets, kMinBuckets)),
      width_(initialWidth > 0.0 ? initialWidth : 1e-4) {}

std::uint64_t CalendarScheduler::dayOf(SimTime at) const noexcept {
  if (at <= 0.0) {
    return 0;
  }
  const double day = at / width_;
  // Clamp far-future timestamps; they land on overflow days either way.
  if (day >= 1e18) {
    return std::uint64_t{1} << 60;
  }
  return static_cast<std::uint64_t>(day);
}

void CalendarScheduler::push(Event event) {
  if (cacheValid_ &&
      dispatchesBefore(event, buckets_[cacheBucket_].front().event)) {
    cacheValid_ = false;
  }
  const std::uint64_t day = dayOf(event.at);
  std::vector<Entry>& bucket = buckets_[day % buckets_.size()];
  bucket.push_back(Entry{day, std::move(event)});
  std::push_heap(bucket.begin(), bucket.end(), entryAfter);
  ++size_;
  if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
    rehash(buckets_.size() * 2);
  }
}

const Event* CalendarScheduler::peek() {
  if (!locate()) {
    return nullptr;
  }
  return &buckets_[cacheBucket_].front().event;
}

Event CalendarScheduler::pop() {
  locate();
  std::vector<Entry>& bucket = buckets_[cacheBucket_];
  std::pop_heap(bucket.begin(), bucket.end(), entryAfter);
  Event event = std::move(bucket.back().event);
  bucket.pop_back();
  --size_;
  floor_ = event.at;
  cacheValid_ = false;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8) {
    rehash(buckets_.size() / 2);
  }
  return event;
}

bool CalendarScheduler::locate() {
  if (size_ == 0) {
    return false;
  }
  if (cacheValid_) {
    return true;
  }
  const std::size_t n = buckets_.size();
  std::uint64_t day = dayOf(floor_);
  for (std::size_t step = 0; step < n; ++step, ++day) {
    const std::vector<Entry>& bucket = buckets_[day % n];
    // Every live entry has day >= dayOf(floor_), and days congruent mod n
    // are a full rotation apart, so the bucket front is due exactly when
    // its day matches the probe day — an O(1) check per day.
    if (!bucket.empty() && bucket.front().day == day) {
      // Every other live entry has day >= this one, hence at >= day * width,
      // so the (at, seq)-minimum of this day window is the global minimum.
      cacheBucket_ = day % n;
      cacheValid_ = true;
      return true;
    }
  }
  // Overflow day: nothing due within a full rotation. Compare the bucket
  // fronts (each bucket's dispatch-order minimum) for the global minimum.
  ++overflowScans_;
  std::size_t bestBucket = kNpos;
  for (std::size_t b = 0; b < n; ++b) {
    const std::vector<Entry>& bucket = buckets_[b];
    if (bucket.empty()) {
      continue;
    }
    if (bestBucket == kNpos ||
        dispatchesBefore(bucket.front().event,
                         buckets_[bestBucket].front().event)) {
      bestBucket = b;
    }
  }
  cacheBucket_ = bestBucket;
  cacheValid_ = true;
  return true;
}

void CalendarScheduler::rehash(std::size_t newBucketCount) {
  std::vector<Entry> entries;
  entries.reserve(size_);
  SimTime minAt = std::numeric_limits<SimTime>::max();
  SimTime maxAt = std::numeric_limits<SimTime>::lowest();
  for (std::vector<Entry>& bucket : buckets_) {
    for (Entry& entry : bucket) {
      minAt = std::min(minAt, entry.event.at);
      maxAt = std::max(maxAt, entry.event.at);
      entries.push_back(std::move(entry));
    }
    bucket.clear();
  }
  if (entries.size() >= 2 && maxAt > minAt) {
    width_ = std::clamp((maxAt - minAt) / static_cast<SimTime>(entries.size()),
                        1e-9, 1e6);
  }
  buckets_.clear();
  buckets_.resize(newBucketCount);
  for (Entry& entry : entries) {
    entry.day = dayOf(entry.event.at);
    buckets_[entry.day % newBucketCount].push_back(std::move(entry));
  }
  for (std::vector<Entry>& bucket : buckets_) {
    std::make_heap(bucket.begin(), bucket.end(), entryAfter);
  }
  cacheValid_ = false;
}

}  // namespace stellar::sim

#include "sim/flow_limiter.hpp"

#include <algorithm>
#include <utility>

namespace stellar::sim {

FlowLimiter::FlowLimiter(SimEngine& engine, std::uint32_t limit)
    : engine_(engine), limit_(std::max<std::uint32_t>(1, limit)) {}

void FlowLimiter::acquire(Callback onAcquired) {
  if (inFlight_ < limit_) {
    ++inFlight_;
    peak_ = std::max<std::uint64_t>(peak_, inFlight_);
    onAcquired();
  } else {
    waiting_.push_back(std::move(onAcquired));
  }
}

void FlowLimiter::release() {
  if (inFlight_ > 0) {
    --inFlight_;
  }
  admitWaiters();
}

void FlowLimiter::setLimit(std::uint32_t limit) {
  limit_ = std::max<std::uint32_t>(1, limit);
  admitWaiters();
}

void FlowLimiter::admitWaiters() {
  while (!waiting_.empty() && inFlight_ < limit_) {
    ++inFlight_;
    peak_ = std::max<std::uint64_t>(peak_, inFlight_);
    Callback next = std::move(waiting_.front());
    waiting_.pop_front();
    // Run through the engine so the waiter resumes as a fresh event (keeps
    // stack depth bounded under long convoys).
    engine_.scheduleAfter(0.0, std::move(next));
  }
}

FlowLimiterBank::FlowLimiterBank(SimEngine& engine, std::size_t lanes,
                                 std::uint32_t limit)
    : engine_(engine), limit_(std::max<std::uint32_t>(1, limit)),
      inFlight_(lanes, 0) {}

void FlowLimiterBank::acquire(std::size_t lane, Callback onAcquired) {
  if (inFlight_[lane] < limit_) {
    ++inFlight_[lane];
    onAcquired();
  } else {
    waiting_[lane].push_back(std::move(onAcquired));
  }
}

void FlowLimiterBank::release(std::size_t lane) {
  if (inFlight_[lane] > 0) {
    --inFlight_[lane];
  }
  admitWaiters(lane);
}

void FlowLimiterBank::setLimit(std::uint32_t limit) {
  limit_ = std::max<std::uint32_t>(1, limit);
  // waiting_ is ordered by lane id, so draining in iteration order is
  // deterministic. Snapshot the backlogged lanes first because
  // admitWaiters erases queues that drain completely.
  std::vector<std::size_t> lanes;
  lanes.reserve(waiting_.size());
  for (const auto& [lane, queue] : waiting_) {
    (void)queue;
    lanes.push_back(lane);
  }
  for (const std::size_t lane : lanes) {
    admitWaiters(lane);
  }
}

std::size_t FlowLimiterBank::waiters(std::size_t lane) const {
  const auto it = waiting_.find(lane);
  return it == waiting_.end() ? 0 : it->second.size();
}

void FlowLimiterBank::admitWaiters(std::size_t lane) {
  const auto it = waiting_.find(lane);
  if (it == waiting_.end()) {
    return;
  }
  std::deque<Callback>& queue = it->second;
  while (!queue.empty() && inFlight_[lane] < limit_) {
    ++inFlight_[lane];
    Callback next = std::move(queue.front());
    queue.pop_front();
    engine_.scheduleAfter(0.0, std::move(next));
  }
  if (queue.empty()) {
    waiting_.erase(it);
  }
}

}  // namespace stellar::sim

#include "sim/flow_limiter.hpp"

#include <algorithm>
#include <utility>

namespace stellar::sim {

FlowLimiter::FlowLimiter(SimEngine& engine, std::uint32_t limit)
    : engine_(engine), limit_(std::max<std::uint32_t>(1, limit)) {}

void FlowLimiter::acquire(std::function<void()> onAcquired) {
  if (inFlight_ < limit_) {
    ++inFlight_;
    peak_ = std::max<std::uint64_t>(peak_, inFlight_);
    onAcquired();
  } else {
    waiting_.push_back(std::move(onAcquired));
  }
}

void FlowLimiter::release() {
  if (inFlight_ > 0) {
    --inFlight_;
  }
  admitWaiters();
}

void FlowLimiter::setLimit(std::uint32_t limit) {
  limit_ = std::max<std::uint32_t>(1, limit);
  admitWaiters();
}

void FlowLimiter::admitWaiters() {
  while (!waiting_.empty() && inFlight_ < limit_) {
    ++inFlight_;
    peak_ = std::max<std::uint64_t>(peak_, inFlight_);
    auto next = std::move(waiting_.front());
    waiting_.pop_front();
    // Run through the engine so the waiter resumes as a fresh event (keeps
    // stack depth bounded under long convoys).
    engine_.scheduleAfter(0.0, std::move(next));
  }
}

}  // namespace stellar::sim

// Discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events firing at equal
// timestamps are ordered by insertion sequence, so a given (workload,
// config, seed) triple always produces the identical event trace. The PFS
// model in src/pfs builds client/server state machines on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace stellar::sim {

/// Simulated time in seconds.
using SimTime = double;

class SimEngine {
 public:
  explicit SimEngine(std::uint64_t seed = 1) : rng_(seed) {}

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now).
  void scheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` after `delay` seconds (clamped to non-negative).
  void scheduleAfter(SimTime delay, std::function<void()> fn);

  /// Schedules a [begin, end) time window: `onOpen` fires at begin and
  /// `onClose` at end, both dispatched through the ordinary event queue so
  /// they order deterministically (FIFO seq) against every other event.
  /// The engine tracks how many windows are currently open; fault
  /// injection (src/faults) builds its state machine on this hook.
  void scheduleWindow(SimTime begin, SimTime end, std::function<void()> onOpen,
                      std::function<void()> onClose);

  /// Windows opened but not yet closed (close edges past a runUntil()
  /// limit never fire, so this can stay nonzero after a capped run).
  [[nodiscard]] std::uint64_t openWindows() const noexcept { return openWindows_; }

  /// Runs until the event queue drains. Returns the final clock value.
  SimTime run();

  /// Runs while events exist and now() <= limit; returns final clock.
  SimTime runUntil(SimTime limit);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept { return processed_; }

  /// Deterministic per-engine random stream (service jitter, lock
  /// conflict sampling). Seeded from the run seed.
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Attaches (nullable) observability sinks. The drain loops emit one
  /// "sim" span per run()/runUntil() call plus a sampled queue-depth
  /// instant every `sampleEvery` dispatches; event totals land in the
  /// registry. Costs a null check per event when detached.
  void attachObservability(obs::Tracer* tracer, obs::CounterRegistry* counters,
                           std::uint64_t sampleEvery = 4096) noexcept {
    tracer_ = tracer;
    counters_ = counters;
    sampleEvery_ = sampleEvery == 0 ? 1 : sampleEvery;
    // Countdown form: the drain loop pays one decrement+compare per event
    // instead of a modulo. Sampling arms only if the tracer is enabled at
    // attach time — a detached or disabled tracer costs one compare per
    // event, identical to no tracer at all.
    sampleTick_ = obs::tracing(tracer) ? 1 : 0;
  }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  void noteDispatch();
  void finishDrain(obs::Tracer::Span& span, std::uint64_t dispatched);
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t openWindows_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  util::Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::CounterRegistry* counters_ = nullptr;
  std::uint64_t sampleEvery_ = 4096;
  std::uint64_t sampleTick_ = 0;  ///< dispatches until the next sample; 0 = off
};

}  // namespace stellar::sim

// Discrete-event simulation engine.
//
// Single-threaded and fully deterministic: events firing at equal
// timestamps are ordered by insertion sequence, so a given (workload,
// config, seed) triple always produces the identical event trace — with
// either scheduler backend, since both implement the same strict
// (timestamp, seq) dispatch order. The PFS model in src/pfs builds
// client/server state machines on top of this; sim::ShardedEngine runs
// several independent engines side by side for federated clusters.
//
// Construction goes through sim::EngineOptions — the options struct is the
// only public constructor, mirroring pfs::SimulatorOptions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/callback.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace stellar::sim {

/// Pending-event scheduler backend. Both implement the identical dispatch
/// order; Calendar is O(1) amortized and the default, Heap is the simple
/// reference baseline.
enum class SchedulerKind : std::uint8_t { Heap, Calendar };

[[nodiscard]] const char* schedulerKindName(SchedulerKind kind) noexcept;

/// The single way to build an engine (and, via ShardedEngine, a shard
/// fleet). Aggregate-initialize with designated fields:
///   SimEngine engine{{.seed = 42, .scheduler = SchedulerKind::Calendar}};
struct EngineOptions {
  /// Seed for the engine's random stream.
  std::uint64_t seed = 1;
  SchedulerKind scheduler = SchedulerKind::Calendar;
  /// First arena block size for event closures; the arena doubles from
  /// here on demand.
  std::size_t arenaBytes = 64 * 1024;
  /// Shard fan-out consumed by ShardedEngine (a bare SimEngine is always
  /// one shard).
  std::uint32_t shards = 1;
  /// Conservative lockstep window (simulated seconds) for ShardedEngine;
  /// 0 lets shards free-run, which is exact when shards share no state
  /// (the federated-cell model guarantees that).
  SimTime syncWindowSeconds = 0.0;
};

class SimEngine {
 public:
  explicit SimEngine(EngineOptions options = {});

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` at absolute time `at` (clamped to now).
  void scheduleAt(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` seconds (clamped to non-negative).
  void scheduleAfter(SimTime delay, Callback cb);

  /// Convenience: wraps any callable in an arena-backed Callback.
  template <EventCallable F>
  void scheduleAt(SimTime at, F&& fn) {
    scheduleAt(at, Callback{arena_, std::forward<F>(fn)});
  }

  template <EventCallable F>
  void scheduleAfter(SimTime delay, F&& fn) {
    scheduleAfter(delay, Callback{arena_, std::forward<F>(fn)});
  }

  [[deprecated("pass a sim::Callback (or any callable); the std::function "
               "overload will be removed next release")]] void
  scheduleAt(SimTime at, std::function<void()> fn);

  [[deprecated("pass a sim::Callback (or any callable); the std::function "
               "overload will be removed next release")]] void
  scheduleAfter(SimTime delay, std::function<void()> fn);

  /// Schedules a [begin, end) time window: `onOpen` fires at begin and
  /// `onClose` at end, both dispatched through the ordinary event queue so
  /// they order deterministically (FIFO seq) against every other event.
  /// The engine tracks how many windows are currently open; fault
  /// injection (src/faults) builds its state machine on this hook.
  void scheduleWindow(SimTime begin, SimTime end, Callback onOpen, Callback onClose);

  template <EventCallable FOpen, EventCallable FClose>
  void scheduleWindow(SimTime begin, SimTime end, FOpen&& onOpen, FClose&& onClose) {
    scheduleWindow(begin, end, Callback{arena_, std::forward<FOpen>(onOpen)},
                   Callback{arena_, std::forward<FClose>(onClose)});
  }

  /// Windows opened but not yet closed. Close edges past a runUntil()
  /// limit have not fired yet; cancelOpenWindows() retires them eagerly.
  [[nodiscard]] std::uint64_t openWindows() const noexcept { return openWindows_; }

  /// Fires the onClose handler of every currently-open window, in window
  /// creation order, without advancing the clock. Call after a capped
  /// runUntil() so window-scoped state (e.g. fault effects) resets cleanly
  /// before the next measurement; the still-queued close edges become
  /// no-ops.
  void cancelOpenWindows();

  /// Runs until the event queue drains. Returns the final clock value.
  SimTime run();

  /// Runs while events exist and their time <= limit; if the queue drains
  /// early the clock advances to the limit. Returns the final clock.
  SimTime runUntil(SimTime limit);

  /// Like runUntil() but never advances the clock past the last dispatched
  /// event — the lockstep primitive for ShardedEngine windows, where the
  /// local clock must not outrun the global horizon.
  SimTime drainUntil(SimTime limit);

  /// Timestamp of the next pending event, if any.
  [[nodiscard]] std::optional<SimTime> nextEventTime();

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t queueDepth() const noexcept;
  [[nodiscard]] std::uint64_t eventsProcessed() const noexcept { return processed_; }

  /// Deterministic per-engine random stream. The PFS hot paths use
  /// per-component streams instead (shard-grouping invariance); this one
  /// remains for engine-local consumers and tests.
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Arena backing event closures; resets when the engine is destroyed.
  [[nodiscard]] EventArena& arena() noexcept { return arena_; }

  /// Attaches (nullable) observability sinks. The drain loops emit one
  /// "sim" span per run()/runUntil() call plus a sampled queue-depth
  /// instant every `sampleEvery` dispatches; event totals land in the
  /// registry. Costs a null check per event when detached.
  void attachObservability(obs::Tracer* tracer, obs::CounterRegistry* counters,
                           std::uint64_t sampleEvery = 4096) noexcept {
    tracer_ = tracer;
    counters_ = counters;
    sampleEvery_ = sampleEvery == 0 ? 1 : sampleEvery;
    // Countdown form: the drain loop pays one decrement+compare per event
    // instead of a modulo. Sampling arms only if the tracer is enabled at
    // attach time — a detached or disabled tracer costs one compare per
    // event, identical to no tracer at all.
    sampleTick_ = obs::tracing(tracer) ? 1 : 0;
  }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  struct WindowRecord {
    Callback onClose;
    bool opened = false;
    bool closed = false;
  };

  void pushEvent(SimTime at, Callback cb);
  [[nodiscard]] const Event* peekEvent();
  Event popEvent();
  void closeWindow(WindowRecord& record);
  void noteDispatch();
  void finishDrain(obs::Tracer::Span& span, std::uint64_t dispatched);

  EngineOptions options_;
  // The arena must outlive every queued Callback: declared before the
  // schedulers and window records so it is destroyed last.
  EventArena arena_;
  HeapScheduler heap_;
  CalendarScheduler calendar_;
  std::vector<std::unique_ptr<WindowRecord>> windows_;
  SimTime now_ = 0.0;
  std::uint64_t openWindows_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  util::Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::CounterRegistry* counters_ = nullptr;
  std::uint64_t sampleEvery_ = 4096;
  std::uint64_t sampleTick_ = 0;  ///< dispatches until the next sample; 0 = off
};

}  // namespace stellar::sim

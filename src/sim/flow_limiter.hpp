// Counting semaphore in simulated time.
//
// Models Lustre's in-flight RPC caps: osc.max_rpcs_in_flight bounds data
// RPCs per client-OST pair, mdc.max_rpcs_in_flight / max_mod_rpcs_in_flight
// bound metadata RPCs per client. Acquirers queue FIFO; release wakes the
// head of the queue in the same simulated instant.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace stellar::sim {

class FlowLimiter {
 public:
  FlowLimiter(SimEngine& engine, std::uint32_t limit);

  FlowLimiter(const FlowLimiter&) = delete;
  FlowLimiter& operator=(const FlowLimiter&) = delete;

  /// Runs `onAcquired` as soon as a token is available (possibly now).
  void acquire(std::function<void()> onAcquired);

  /// Returns one token; wakes the oldest waiter if any.
  void release();

  /// Changes the limit (used when a tuning iteration applies a new
  /// config); newly-freed headroom admits queued waiters immediately.
  void setLimit(std::uint32_t limit);

  [[nodiscard]] std::uint32_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::uint32_t inFlight() const noexcept { return inFlight_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiting_.size(); }
  [[nodiscard]] std::uint64_t peakInFlight() const noexcept { return peak_; }

 private:
  void admitWaiters();

  SimEngine& engine_;
  std::uint32_t limit_;
  std::uint32_t inFlight_ = 0;
  std::uint64_t peak_ = 0;
  std::deque<std::function<void()>> waiting_;
};

}  // namespace stellar::sim

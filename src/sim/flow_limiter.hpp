// Counting semaphores in simulated time.
//
// Models Lustre's in-flight RPC caps: osc.max_rpcs_in_flight bounds data
// RPCs per client-OST pair, mdc.max_rpcs_in_flight / max_mod_rpcs_in_flight
// bound metadata RPCs per client. Acquirers queue FIFO; release wakes the
// head of the queue in the same simulated instant.
//
// FlowLimiter is a single semaphore; FlowLimiterBank packs one semaphore
// per "lane" (e.g. every client-node × OST pair) into struct-of-arrays
// counters with a sparse waiter map, so datacenter-scale clusters pay a
// few bytes per lane instead of a heap object per pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace stellar::sim {

class FlowLimiter {
 public:
  FlowLimiter(SimEngine& engine, std::uint32_t limit);

  FlowLimiter(const FlowLimiter&) = delete;
  FlowLimiter& operator=(const FlowLimiter&) = delete;

  /// Runs `onAcquired` as soon as a token is available (possibly now).
  void acquire(Callback onAcquired);

  template <EventCallable F>
  void acquire(F&& onAcquired) {
    acquire(Callback{engine_.arena(), std::forward<F>(onAcquired)});
  }

  /// Returns one token; wakes the oldest waiter if any.
  void release();

  /// Changes the limit (used when a tuning iteration applies a new
  /// config); newly-freed headroom admits queued waiters immediately.
  void setLimit(std::uint32_t limit);

  [[nodiscard]] std::uint32_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::uint32_t inFlight() const noexcept { return inFlight_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiting_.size(); }
  [[nodiscard]] std::uint64_t peakInFlight() const noexcept { return peak_; }

 private:
  void admitWaiters();

  SimEngine& engine_;
  std::uint32_t limit_;
  std::uint32_t inFlight_ = 0;
  std::uint64_t peak_ = 0;
  std::deque<Callback> waiting_;
};

/// A bank of FIFO semaphores sharing one limit, indexed by dense lane id.
/// Semantics per lane match FlowLimiter exactly (including the fresh-event
/// wakeup on release); only the storage differs.
class FlowLimiterBank {
 public:
  FlowLimiterBank(SimEngine& engine, std::size_t lanes, std::uint32_t limit);

  FlowLimiterBank(const FlowLimiterBank&) = delete;
  FlowLimiterBank& operator=(const FlowLimiterBank&) = delete;

  void acquire(std::size_t lane, Callback onAcquired);

  template <EventCallable F>
  void acquire(std::size_t lane, F&& onAcquired) {
    acquire(lane, Callback{engine_.arena(), std::forward<F>(onAcquired)});
  }

  void release(std::size_t lane);

  /// Applies a new shared limit to every lane.
  void setLimit(std::uint32_t limit);

  [[nodiscard]] std::uint32_t limit() const noexcept { return limit_; }
  [[nodiscard]] std::size_t laneCount() const noexcept { return inFlight_.size(); }
  [[nodiscard]] std::uint32_t inFlight(std::size_t lane) const { return inFlight_[lane]; }
  [[nodiscard]] std::size_t waiters(std::size_t lane) const;

 private:
  void admitWaiters(std::size_t lane);

  SimEngine& engine_;
  std::uint32_t limit_;
  std::vector<std::uint32_t> inFlight_;
  // Waiter queues exist only for backlogged lanes. Ordered map, not
  // unordered: setLimit drains backlogged lanes in iteration order, and
  // wakeup order must be a pure function of lane ids (stellar-lint
  // DET-UNORDERED-ITER; pinned by the testkit ML-DET law).
  std::map<std::size_t, std::deque<Callback>> waiting_;
};

}  // namespace stellar::sim

#include "sim/callback.hpp"

#include <algorithm>
#include <cstring>

namespace stellar::sim {

EventArena::EventArena(std::size_t firstBlockBytes) {
  const std::size_t first = std::max<std::size_t>(firstBlockBytes, kMaxClassBytes);
  addBlock(first);
  nextBlockBytes_ = first * 2;
}

EventArena::~EventArena() {
  for (auto& [ptr, bytes] : blocks_) {
    ::operator delete(ptr, std::align_val_t{alignof(std::max_align_t)});
  }
}

void* EventArena::allocate(std::size_t bytes) {
  ++allocations_;
  if (bytes > kMaxClassBytes) {
    ++oversized_;
    return ::operator new(bytes);
  }
  const std::size_t cls = classIndex(bytes);
  if (FreeNode* node = freeLists_[cls]; node != nullptr) {
    freeLists_[cls] = node->next;
    return node;
  }
  const std::size_t rounded = (cls + 1) * kGranularity;
  if (bumpLeft_ < rounded) {
    addBlock(std::max(nextBlockBytes_, rounded));
    nextBlockBytes_ *= 2;
  }
  std::byte* mem = bump_;
  bump_ += rounded;
  bumpLeft_ -= rounded;
  return mem;
}

void EventArena::deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) {
    return;
  }
  if (bytes > kMaxClassBytes) {
    ::operator delete(ptr);
    return;
  }
  auto* node = static_cast<FreeNode*>(ptr);
  const std::size_t cls = classIndex(bytes);
  node->next = freeLists_[cls];
  freeLists_[cls] = node;
}

void EventArena::reset() noexcept {
  std::fill(std::begin(freeLists_), std::end(freeLists_), nullptr);
  while (blocks_.size() > 1) {
    auto [ptr, bytes] = blocks_.back();
    blocks_.pop_back();
    reserved_ -= bytes;
    ::operator delete(ptr, std::align_val_t{alignof(std::max_align_t)});
  }
  bump_ = blocks_.front().first;
  bumpLeft_ = blocks_.front().second;
  nextBlockBytes_ = blocks_.front().second * 2;
}

void EventArena::addBlock(std::size_t bytes) {
  auto* mem = static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)}));
  blocks_.emplace_back(mem, bytes);
  bump_ = mem;
  bumpLeft_ = bytes;
  reserved_ += bytes;
}

}  // namespace stellar::sim

// FIFO multi-server service center.
//
// Models any resource that serves one request per "server" at a time with
// queueing: an OST's disk spindles / server threads, the MDS service
// threads, or a network link (1 server, service time = bytes/bandwidth).
//
// Beyond a configurable efficient queue depth, additional *contention
// latency* per request can be layered on by the owner (see pfs::OstBank),
// which yields the saturation/diminishing-returns behaviour the paper's
// Tuning Agent observes when raising concurrency knobs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace stellar::sim {

class ServiceCenter {
 public:
  /// name is used in diagnostics; servers >= 1.
  ServiceCenter(SimEngine& engine, std::string name, std::uint32_t servers);

  ServiceCenter(const ServiceCenter&) = delete;
  ServiceCenter& operator=(const ServiceCenter&) = delete;

  /// Enqueues a request that occupies one server for `serviceTime`
  /// seconds and invokes `onDone` at completion.
  void submit(SimTime serviceTime, Callback onDone);

  template <EventCallable F>
  void submit(SimTime serviceTime, F&& onDone) {
    submit(serviceTime, Callback{engine_.arena(), std::forward<F>(onDone)});
  }

  [[nodiscard]] std::uint32_t busyServers() const noexcept { return busy_; }
  [[nodiscard]] std::size_t queuedRequests() const noexcept { return waiting_.size(); }

  /// Total requests admitted (served + in service + waiting).
  [[nodiscard]] std::uint64_t totalSubmitted() const noexcept { return submitted_; }

  /// Aggregate busy time across servers; busyTime()/elapsed/servers gives
  /// utilization. Used by tests to check conservation of work.
  [[nodiscard]] double busyTime() const noexcept { return busyTime_; }

  /// Time-weighted average queue length is not tracked; peak queue is.
  [[nodiscard]] std::size_t peakQueue() const noexcept { return peakQueue_; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct Request {
    SimTime serviceTime;
    Callback onDone;
  };

  void startService(Request request);

  SimEngine& engine_;
  std::string name_;
  std::uint32_t servers_;
  std::uint32_t busy_ = 0;
  std::deque<Request> waiting_;
  std::uint64_t submitted_ = 0;
  double busyTime_ = 0.0;
  std::size_t peakQueue_ = 0;
};

}  // namespace stellar::sim

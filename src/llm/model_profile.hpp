// Model profiles for the simulated LLMs.
//
// The paper runs STELLAR with Claude-3.7-Sonnet, GPT-4o, and
// Llama-3.1-70B-Instruct (§5.5). This reproduction replaces API calls with
// a deterministic inference engine whose *failure modes* are governed by
// two per-model scalars: reasoning quality (how often decision points pick
// the best-supported option) and hallucination rate (how often a parameter
// fact recalled from "pretrained memory" is corrupted). Cost/latency
// figures reproduce the paper's §5.7 accounting.
#pragma once

#include <string>
#include <vector>

namespace stellar::llm {

struct ModelProfile {
  std::string name;
  /// Probability a reasoning step picks the best-supported decision.
  double reasoningQuality = 0.9;
  /// Probability a parameter fact recalled without retrieval grounding is
  /// corrupted (plausible-but-wrong).
  double hallucinationRate = 0.1;
  /// API pricing, USD per million tokens.
  double usdPerMInput = 3.0;
  double usdPerMCachedInput = 0.3;
  double usdPerMOutput = 15.0;
  /// Seconds of inference latency per call (paper: "a few seconds").
  double latencyPerCall = 2.0;
};

/// The Tuning Agent default in every headline experiment.
[[nodiscard]] ModelProfile claude37Sonnet();
/// The Analysis Agent / extraction default.
[[nodiscard]] ModelProfile gpt4o();
/// The small open-weights comparison point of Fig. 9.
[[nodiscard]] ModelProfile llama31_70b();
/// An older model used by the offline extractor in the paper (Fig. 2 notes
/// RAG extraction runs on GPT-4o); kept distinct for the hallucination demo.
[[nodiscard]] ModelProfile gpt45();
[[nodiscard]] ModelProfile gemini25pro();

/// Lookup by name; throws std::invalid_argument for unknown models.
[[nodiscard]] ModelProfile profileByName(const std::string& name);

/// All profiles the benches iterate over.
[[nodiscard]] std::vector<ModelProfile> allProfiles();

}  // namespace stellar::llm

// Deterministic fault model for the simulated LLM inference boundary
// (ISSUE 7). The llm:* events of a faults::FaultPlan describe *when* and
// *how often* model calls misbehave; this class turns them into a pure
// function of (model name, call index, attempt, kind) so the same plan and
// seed replay the exact same weather — the property that makes agent-layer
// chaos testable at all.
//
// Two fault families:
//   transport  timeout / rate-limit / truncated / malformed — the call
//              attempt fails outright and must be retried (LlmClient);
//   content    hallucinated knob / out-of-range value / stale analysis —
//              the call succeeds but its payload is corrupted (the
//              ActionSanitizer's job to contain).
#pragma once

#include <cstdint>
#include <string>

#include "faults/fault_plan.hpp"

namespace stellar::llm {

/// Transport-level outcome of one call attempt.
enum class CallFault : std::uint8_t {
  None,
  Timeout,    ///< no response before the deadline
  RateLimit,  ///< provider backpressure (429)
  Truncated,  ///< response cut off mid-action
  Malformed,  ///< tool-call JSON fails to parse
};

[[nodiscard]] const char* callFaultName(CallFault fault) noexcept;

/// What the fault model decided for one call attempt.
struct CallDirectives {
  CallFault transport = CallFault::None;
  /// Content corruptions; only meaningful when transport == None.
  bool hallucinatedKnob = false;
  bool outOfRange = false;
  bool staleAnalysis = false;

  [[nodiscard]] bool delivered() const noexcept { return transport == CallFault::None; }
  [[nodiscard]] bool corrupted() const noexcept {
    return hallucinatedKnob || outOfRange || staleAnalysis;
  }
};

class LlmFaultModel {
 public:
  /// Inert model: every call succeeds uncorrupted.
  LlmFaultModel() = default;

  /// Extracts the llm:* events (and seed) from a plan. The simulator-side
  /// kinds are ignored here exactly as FaultInjector ignores the llm:*
  /// kinds — one --faults spec covers both layers.
  explicit LlmFaultModel(const faults::FaultPlan& plan);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Samples the directives for one attempt of one call. `callIndex` is the
  /// session-global logical call counter (windows are expressed in it);
  /// `attempt` is the retry ordinal within the call, so retries of a flaky
  /// call resample independently while a p=1 window fails them all.
  [[nodiscard]] CallDirectives sample(const std::string& model,
                                      std::uint64_t callIndex,
                                      std::uint32_t attempt) const;

 private:
  [[nodiscard]] bool fires(const faults::FaultEvent& event, const std::string& model,
                           std::uint64_t callIndex, std::uint32_t attempt) const;

  std::uint64_t seed_ = 1;
  std::vector<faults::FaultEvent> events_;
};

}  // namespace stellar::llm

#include "llm/token_meter.hpp"

#include <algorithm>

#include "rag/tokenizer.hpp"

namespace stellar::llm {

CallRecord TokenMeter::recordCall(const std::string& conversation,
                                  const std::string& prompt, const std::string& output) {
  CallRecord record;
  record.conversation = conversation;
  record.inputTokens = rag::approxTokenCount(prompt);
  record.outputTokens = rag::approxTokenCount(output);

  auto& last = lastPrompt_[conversation];
  // Longest common prefix with the previous prompt in this conversation is
  // served from the provider's prompt cache.
  const std::size_t common = [&] {
    const std::size_t n = std::min(last.size(), prompt.size());
    std::size_t i = 0;
    while (i < n && last[i] == prompt[i]) {
      ++i;
    }
    return i;
  }();
  record.cachedTokens =
      std::min(record.inputTokens, rag::approxTokenCount(prompt.substr(0, common)));
  last = prompt;

  calls_.push_back(record);
  return record;
}

UsageTotals TokenMeter::totals(const std::string& conversation) const {
  UsageTotals totals;
  for (const CallRecord& call : calls_) {
    if (!conversation.empty() && call.conversation != conversation) {
      continue;
    }
    ++totals.calls;
    totals.inputTokens += call.inputTokens;
    totals.cachedTokens += call.cachedTokens;
    totals.outputTokens += call.outputTokens;
  }
  return totals;
}

double TokenMeter::estimateCostUsd(const ModelProfile& profile,
                                   const std::string& conversation) const {
  const UsageTotals t = totals(conversation);
  const double fresh = static_cast<double>(t.inputTokens - t.cachedTokens);
  const double cached = static_cast<double>(t.cachedTokens);
  const double output = static_cast<double>(t.outputTokens);
  return (fresh * profile.usdPerMInput + cached * profile.usdPerMCachedInput +
          output * profile.usdPerMOutput) /
         1e6;
}

double TokenMeter::estimateLatencySeconds(const ModelProfile& profile,
                                          const std::string& conversation) const {
  return static_cast<double>(totals(conversation).calls) * profile.latencyPerCall;
}

void TokenMeter::reset() {
  calls_.clear();
  lastPrompt_.clear();
}

}  // namespace stellar::llm

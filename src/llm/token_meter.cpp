#include "llm/token_meter.hpp"

#include <algorithm>

#include "rag/tokenizer.hpp"

namespace stellar::llm {

CallRecord TokenMeter::recordCall(const std::string& conversation,
                                  const std::string& prompt, const std::string& output) {
  return record(conversation, prompt, output, /*wasted=*/false);
}

CallRecord TokenMeter::recordWastedCall(const std::string& conversation,
                                        const std::string& prompt,
                                        const std::string& output) {
  return record(conversation, prompt, output, /*wasted=*/true);
}

CallRecord TokenMeter::record(const std::string& conversation, const std::string& prompt,
                              const std::string& output, bool wasted) {
  CallRecord record;
  record.conversation = conversation;
  record.wasted = wasted;
  record.inputTokens = rag::approxTokenCount(prompt);
  record.outputTokens = rag::approxTokenCount(output);

  auto& last = lastPrompt_[conversation];
  // Longest common prefix with the previous prompt in this conversation is
  // served from the provider's prompt cache.
  const std::size_t common = [&] {
    const std::size_t n = std::min(last.size(), prompt.size());
    std::size_t i = 0;
    while (i < n && last[i] == prompt[i]) {
      ++i;
    }
    return i;
  }();
  record.cachedTokens =
      std::min(record.inputTokens, rag::approxTokenCount(prompt.substr(0, common)));
  last = prompt;

  calls_.push_back(record);
  return record;
}

UsageTotals TokenMeter::totals(const std::string& conversation) const {
  UsageTotals totals;
  for (const CallRecord& call : calls_) {
    if (!conversation.empty() && call.conversation != conversation) {
      continue;
    }
    if (call.wasted) {
      ++totals.wastedCalls;
      totals.wastedInputTokens += call.inputTokens;
      totals.wastedCachedTokens += call.cachedTokens;
      totals.wastedOutputTokens += call.outputTokens;
    } else {
      ++totals.calls;
      totals.inputTokens += call.inputTokens;
      totals.cachedTokens += call.cachedTokens;
      totals.outputTokens += call.outputTokens;
    }
  }
  return totals;
}

double TokenMeter::estimateCostUsd(const ModelProfile& profile,
                                   const std::string& conversation) const {
  const UsageTotals t = totals(conversation);
  // Wasted calls bill at the same rates: flaky models cost real money.
  const double fresh = static_cast<double>((t.inputTokens - t.cachedTokens) +
                                           (t.wastedInputTokens - t.wastedCachedTokens));
  const double cached = static_cast<double>(t.cachedTokens + t.wastedCachedTokens);
  const double output = static_cast<double>(t.outputTokens + t.wastedOutputTokens);
  return (fresh * profile.usdPerMInput + cached * profile.usdPerMCachedInput +
          output * profile.usdPerMOutput) /
         1e6;
}

double TokenMeter::estimateLatencySeconds(const ModelProfile& profile,
                                          const std::string& conversation) const {
  const UsageTotals t = totals(conversation);
  return static_cast<double>(t.calls + t.wastedCalls) * profile.latencyPerCall;
}

void TokenMeter::reset() {
  calls_.clear();
  lastPrompt_.clear();
}

}  // namespace stellar::llm

#include "llm/llm_client.hpp"

namespace stellar::llm {

const char* breakerStateName(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

LlmClient::LlmClient(const LlmFaultModel* faults, TokenMeter& meter,
                     obs::CounterRegistry* counters, LlmClientOptions options)
    : faults_(faults), meter_(meter), counters_(counters), opts_(options) {}

void LlmClient::count(const char* name, const std::string& model, double delta) {
  if (counters_ != nullptr) {
    counters_->counter(name, {{"model", model}}).add(delta);
  }
}

BreakerState LlmClient::breakerState(const std::string& model) const {
  const util::MutexLock lock{mutex_};
  const auto it = breakers_.find(model);
  return it == breakers_.end() ? BreakerState::Closed : it->second.state;
}

CallOutcome LlmClient::call(const ModelProfile& profile,
                            const std::string& conversation, const std::string& prompt,
                            const std::string& output) {
  const util::MutexLock lock{mutex_};
  CallOutcome outcome;
  const std::uint64_t callIndex = nextCall_++;

  // Fault-free fast path: exactly the pre-client accounting, no breaker
  // bookkeeping, so attaching a client never perturbs clean runs.
  if (faults_ == nullptr || faults_->empty()) {
    meter_.recordCall(conversation, prompt, output);
    return outcome;
  }

  Breaker& breaker = breakers_[profile.name];
  if (breaker.state == BreakerState::Open) {
    if (callIndex <
        breaker.openedAtCall + static_cast<std::uint64_t>(opts_.breakerCooldownCalls)) {
      // Cooling down: fail fast, nothing sent, nothing billed.
      outcome.ok = false;
      outcome.breakerOpen = true;
      count("agent.llm.breaker_short_circuits", profile.name);
      ++failedCalls_;
      return outcome;
    }
    breaker.state = BreakerState::HalfOpen;
  }

  // A half-open breaker grants a single probe attempt; retrying against a
  // provider that just tripped the breaker would defeat the point.
  const int attempts =
      breaker.state == BreakerState::HalfOpen ? 1 : opts_.maxRetries + 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const CallDirectives d =
        faults_->sample(profile.name, callIndex, static_cast<std::uint32_t>(attempt));
    if (d.delivered()) {
      meter_.recordCall(conversation, prompt, output);
      outcome.directives = d;
      outcome.retries = attempt;
      breaker.consecutiveFailures = 0;
      breaker.state = BreakerState::Closed;
      return outcome;
    }
    // A failed attempt still bills: the prompt was sent, and a truncated or
    // malformed response still generated (partial) output tokens. Timeouts
    // and rate limits produce no billable output.
    const bool billedOutput =
        d.transport == CallFault::Truncated || d.transport == CallFault::Malformed;
    meter_.recordWastedCall(conversation, prompt, billedOutput ? output : std::string{});
    ++wastedAttempts_;
    outcome.lastFault = d.transport;
    count(d.transport == CallFault::Timeout ? "agent.llm.timeouts"
                                            : "agent.llm.failed_attempts",
          profile.name);
    if (attempt + 1 < attempts) {
      ++outcome.retries;
      count("agent.llm.retries", profile.name);
      const double backoff =
          opts_.backoffBaseSeconds * static_cast<double>(1ULL << attempt);
      outcome.backoffSeconds += backoff;
      backoffSeconds_ += backoff;
    }
  }

  // Logical call failed: advance the breaker.
  outcome.ok = false;
  ++failedCalls_;
  ++breaker.consecutiveFailures;
  if (breaker.state == BreakerState::HalfOpen ||
      breaker.consecutiveFailures >= opts_.breakerThreshold) {
    if (breaker.state != BreakerState::Open) {
      ++breakerTrips_;
      count("agent.llm.breaker_trips", profile.name);
    }
    breaker.state = BreakerState::Open;
    breaker.openedAtCall = callIndex;
  }
  return outcome;
}

}  // namespace stellar::llm

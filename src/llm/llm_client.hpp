// LlmClient: the inference boundary of the simulated agents, with the
// failure handling a real deployment needs (ISSUE 7).
//
// Every logical call runs a bounded retry loop with exponential backoff
// (backoff is simulated time, accounted as extra latency) against the
// deterministic LlmFaultModel. Failed attempts still bill tokens — they go
// to the TokenMeter's wasted_* tallies. A per-model circuit breaker trips
// after consecutive logical-call failures, short-circuits calls during a
// cooldown, then lets a single half-open probe through; success closes the
// breaker, failure re-opens it.
//
// With no fault model attached the clean path is byte-for-byte what
// TokenMeter::recordCall alone would have done — attaching the client to
// an agent never perturbs fault-free runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "llm/llm_fault_model.hpp"
#include "llm/model_profile.hpp"
#include "llm/token_meter.hpp"
#include "obs/counters.hpp"
#include "util/thread_annotations.hpp"

namespace stellar::llm {

struct LlmClientOptions {
  /// Retries per logical call (total attempts = maxRetries + 1).
  int maxRetries = 3;
  /// Simulated backoff before retry r: base * 2^r seconds.
  double backoffBaseSeconds = 1.0;
  /// Consecutive failed logical calls that trip a model's breaker.
  int breakerThreshold = 2;
  /// Logical calls short-circuited while open before the half-open probe.
  int breakerCooldownCalls = 2;
};

/// Result of one logical call (after retries).
struct CallOutcome {
  bool ok = true;
  /// Content-corruption directives of the delivered attempt.
  CallDirectives directives;
  int retries = 0;                      ///< wasted attempts before the outcome
  CallFault lastFault = CallFault::None;  ///< cause when !ok
  bool breakerOpen = false;             ///< short-circuited, no attempt made
  double backoffSeconds = 0.0;          ///< simulated backoff waited
};

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

[[nodiscard]] const char* breakerStateName(BreakerState state) noexcept;

class LlmClient {
 public:
  /// `faults` nullable (inert) and non-owning; `counters` nullable.
  LlmClient(const LlmFaultModel* faults, TokenMeter& meter,
            obs::CounterRegistry* counters, LlmClientOptions options = {});

  /// One logical call. On success the prompt/output are metered as a normal
  /// call; every failed attempt is metered as wasted. An open breaker
  /// short-circuits without metering (nothing was sent).
  CallOutcome call(const ModelProfile& profile, const std::string& conversation,
                   const std::string& prompt, const std::string& output);

  [[nodiscard]] BreakerState breakerState(const std::string& model) const;
  [[nodiscard]] std::uint64_t callsIssued() const {
    const util::MutexLock lock{mutex_};
    return nextCall_;
  }
  [[nodiscard]] std::uint64_t breakerTrips() const {
    const util::MutexLock lock{mutex_};
    return breakerTrips_;
  }
  [[nodiscard]] std::uint64_t failedCalls() const {
    const util::MutexLock lock{mutex_};
    return failedCalls_;
  }
  [[nodiscard]] std::uint64_t wastedAttempts() const {
    const util::MutexLock lock{mutex_};
    return wastedAttempts_;
  }
  [[nodiscard]] double backoffSeconds() const {
    const util::MutexLock lock{mutex_};
    return backoffSeconds_;
  }

 private:
  struct Breaker {
    BreakerState state = BreakerState::Closed;
    int consecutiveFailures = 0;
    std::uint64_t openedAtCall = 0;
  };

  void count(const char* name, const std::string& model, double delta = 1.0);

  const LlmFaultModel* faults_;
  TokenMeter& meter_;
  obs::CounterRegistry* counters_;
  LlmClientOptions opts_;
  /// One logical call is one critical section: a future multi-tenant
  /// stellard shares a client (and its breakers) across sessions, and the
  /// breaker state machine must advance atomically per call.
  mutable util::Mutex mutex_;
  std::map<std::string, Breaker> breakers_ STELLAR_GUARDED_BY(mutex_);
  std::uint64_t nextCall_ STELLAR_GUARDED_BY(mutex_) = 0;
  std::uint64_t breakerTrips_ STELLAR_GUARDED_BY(mutex_) = 0;
  std::uint64_t failedCalls_ STELLAR_GUARDED_BY(mutex_) = 0;
  std::uint64_t wastedAttempts_ STELLAR_GUARDED_BY(mutex_) = 0;
  double backoffSeconds_ STELLAR_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace stellar::llm

#include "llm/llm_fault_model.hpp"

#include "util/rng.hpp"

namespace stellar::llm {

const char* callFaultName(CallFault fault) noexcept {
  switch (fault) {
    case CallFault::None: return "none";
    case CallFault::Timeout: return "timeout";
    case CallFault::RateLimit: return "rate-limit";
    case CallFault::Truncated: return "truncated";
    case CallFault::Malformed: return "malformed";
  }
  return "?";
}

LlmFaultModel::LlmFaultModel(const faults::FaultPlan& plan) : seed_(plan.seed) {
  for (const faults::FaultEvent& event : plan.events) {
    if (faults::isLlmFault(event.kind)) {
      events_.push_back(event);
    }
  }
}

bool LlmFaultModel::fires(const faults::FaultEvent& event, const std::string& model,
                          std::uint64_t callIndex, std::uint32_t attempt) const {
  const double index = static_cast<double>(callIndex);
  if (index < event.begin || index >= event.end) {
    return false;
  }
  if (!event.model.empty() && model.find(event.model) == std::string::npos) {
    return false;
  }
  if (event.magnitude >= 1.0) {
    return true;
  }
  if (event.magnitude <= 0.0) {
    return false;
  }
  // Pure hash of every coordinate: no shared RNG stream, so adding events
  // or retrying calls never perturbs unrelated samples.
  const std::uint64_t h = util::mix64(
      seed_, util::mix64(util::hash64(model),
                         util::mix64(callIndex,
                                     util::mix64(attempt,
                                                 static_cast<std::uint64_t>(event.kind)))));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / static_cast<double>(1ULL << 53));
  return u < event.magnitude;
}

CallDirectives LlmFaultModel::sample(const std::string& model, std::uint64_t callIndex,
                                     std::uint32_t attempt) const {
  CallDirectives out;
  for (const faults::FaultEvent& event : events_) {
    if (!fires(event, model, callIndex, attempt)) {
      continue;
    }
    switch (event.kind) {
      case faults::FaultKind::LlmTimeout:
        if (out.transport == CallFault::None) out.transport = CallFault::Timeout;
        break;
      case faults::FaultKind::LlmRateLimit:
        if (out.transport == CallFault::None) out.transport = CallFault::RateLimit;
        break;
      case faults::FaultKind::LlmTruncated:
        if (out.transport == CallFault::None) out.transport = CallFault::Truncated;
        break;
      case faults::FaultKind::LlmMalformed:
        if (out.transport == CallFault::None) out.transport = CallFault::Malformed;
        break;
      case faults::FaultKind::LlmHallucinatedKnob:
        out.hallucinatedKnob = true;
        break;
      case faults::FaultKind::LlmOutOfRange:
        out.outOfRange = true;
        break;
      case faults::FaultKind::LlmStaleAnalysis:
        out.staleAnalysis = true;
        break;
      default:
        break;  // simulator-side kinds never reach events_
    }
  }
  return out;
}

}  // namespace stellar::llm

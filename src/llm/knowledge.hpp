// Parameter knowledge as an agent holds it — possibly hallucinated.
//
// §4.2.1/Fig. 2 of the paper: models asked about domain-specific parameters
// produce plausible but wrong definitions and ranges. This module makes
// that mechanism explicit: knowledge recalled from "pretrained memory" is
// the ground-truth fact corrupted with model-specific, deterministic
// probability; knowledge produced by the RAG extraction pipeline (src/core)
// is grounded and accurate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "llm/model_profile.hpp"
#include "manual/param_facts.hpp"

namespace stellar::llm {

enum class KnowledgeSource { RagExtraction, ModelMemory };

enum class CorruptionKind {
  None,
  WrongRange,        ///< believed max/min off by a large factor
  WrongDefinition,   ///< description describes a different mechanism
  FlippedDirection,  ///< believed I/O impact points the wrong way
};

[[nodiscard]] const char* corruptionName(CorruptionKind kind) noexcept;

/// What an agent believes about one parameter.
struct ParamKnowledge {
  std::string param;
  std::string description;
  std::string ioImpact;
  std::int64_t minValue = 0;  ///< believed valid range (resolved numbers)
  std::int64_t maxValue = 0;
  std::int64_t defaultValue = 0;
  KnowledgeSource source = KnowledgeSource::ModelMemory;
  CorruptionKind corruption = CorruptionKind::None;

  /// True when the description/impact reflect the real mechanism (the
  /// tuning heuristics consult this to decide whether the agent reasons
  /// from the true semantics or from the corrupted ones).
  [[nodiscard]] bool semanticallyAccurate() const noexcept {
    return corruption == CorruptionKind::None ||
           corruption == CorruptionKind::WrongRange;
  }
  [[nodiscard]] bool rangeAccurate() const noexcept {
    return corruption != CorruptionKind::WrongRange;
  }
};

/// Recalls a fact from model memory: corrupted with probability
/// profile.hallucinationRate, deterministically per (model, param, salt).
[[nodiscard]] ParamKnowledge recallFromMemory(const manual::ParamFact& fact,
                                              const ModelProfile& profile,
                                              const manual::SystemFacts& facts,
                                              std::uint64_t salt = 0);

/// Grounded knowledge, as the RAG extraction emits it (always accurate;
/// ranges resolved against system facts).
[[nodiscard]] ParamKnowledge groundedKnowledge(const manual::ParamFact& fact,
                                               const manual::SystemFacts& facts);

/// Resolves a fact's min/max expressions to numbers using system facts and
/// the *default* values of referenced parameters.
struct ResolvedRange {
  std::int64_t min = 0;
  std::int64_t max = 0;
};
[[nodiscard]] ResolvedRange resolveRange(const manual::ParamFact& fact,
                                         const manual::SystemFacts& facts);

}  // namespace stellar::llm

#include "llm/model_profile.hpp"

#include <stdexcept>

namespace stellar::llm {

ModelProfile claude37Sonnet() {
  return ModelProfile{.name = "claude-3.7-sonnet",
                      .reasoningQuality = 0.95,
                      .hallucinationRate = 0.06,
                      .usdPerMInput = 3.0,
                      .usdPerMCachedInput = 0.3,
                      .usdPerMOutput = 15.0,
                      .latencyPerCall = 2.5};
}

ModelProfile gpt4o() {
  return ModelProfile{.name = "gpt-4o",
                      .reasoningQuality = 0.90,
                      .hallucinationRate = 0.10,
                      .usdPerMInput = 2.5,
                      .usdPerMCachedInput = 1.25,
                      .usdPerMOutput = 10.0,
                      .latencyPerCall = 1.8};
}

ModelProfile llama31_70b() {
  return ModelProfile{.name = "llama-3.1-70b-instruct",
                      .reasoningQuality = 0.82,
                      .hallucinationRate = 0.18,
                      .usdPerMInput = 0.9,
                      .usdPerMCachedInput = 0.9,
                      .usdPerMOutput = 0.9,
                      .latencyPerCall = 1.2};
}

ModelProfile gpt45() {
  return ModelProfile{.name = "gpt-4.5",
                      .reasoningQuality = 0.93,
                      .hallucinationRate = 0.08,
                      .usdPerMInput = 75.0,
                      .usdPerMCachedInput = 37.5,
                      .usdPerMOutput = 150.0,
                      .latencyPerCall = 3.5};
}

ModelProfile gemini25pro() {
  return ModelProfile{.name = "gemini-2.5-pro",
                      .reasoningQuality = 0.92,
                      .hallucinationRate = 0.09,
                      .usdPerMInput = 1.25,
                      .usdPerMCachedInput = 0.31,
                      .usdPerMOutput = 10.0,
                      .latencyPerCall = 2.0};
}

ModelProfile profileByName(const std::string& name) {
  for (const ModelProfile& profile : allProfiles()) {
    if (profile.name == name) {
      return profile;
    }
  }
  throw std::invalid_argument("unknown model profile: " + name);
}

std::vector<ModelProfile> allProfiles() {
  return {claude37Sonnet(), gpt4o(), llama31_70b(), gpt45(), gemini25pro()};
}

}  // namespace stellar::llm

// Token accounting with prefix-cache modeling (§5.7).
//
// Every simulated agent call records its assembled prompt and generated
// output. Within one conversation, the longest common prefix with the
// previous prompt counts as cached input — reproducing the paper's
// observation that 85-90% of input tokens resolve from cache across a
// tuning run, because the iterative loop keeps re-sending the same
// context with appended turns.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "llm/model_profile.hpp"

namespace stellar::llm {

struct CallRecord {
  std::string conversation;  ///< e.g. "tuning-agent", "analysis-agent"
  std::size_t inputTokens = 0;
  std::size_t cachedTokens = 0;  ///< subset of inputTokens served from cache
  std::size_t outputTokens = 0;
  /// A call that failed (timeout, rate limit, truncation, ...) and was
  /// retried or abandoned. The provider still bills it.
  bool wasted = false;
};

struct UsageTotals {
  std::size_t calls = 0;  ///< successful calls only
  std::size_t inputTokens = 0;
  std::size_t cachedTokens = 0;
  std::size_t outputTokens = 0;
  /// Failed/retried calls, tallied separately so tab_cost_latency can show
  /// the true price of a flaky model next to the useful spend.
  std::size_t wastedCalls = 0;
  std::size_t wastedInputTokens = 0;
  std::size_t wastedCachedTokens = 0;
  std::size_t wastedOutputTokens = 0;

  [[nodiscard]] double cacheHitRate() const noexcept {
    return inputTokens == 0
               ? 0.0
               : static_cast<double>(cachedTokens) / static_cast<double>(inputTokens);
  }
};

class TokenMeter {
 public:
  /// Records one call; returns the record (for transcripts).
  CallRecord recordCall(const std::string& conversation, const std::string& prompt,
                        const std::string& output);

  /// Records a failed call (timed out / rate limited / truncated). The
  /// prompt was still sent and any partial output still generated, so both
  /// are billed — under the wasted_* tallies. Also warms the prompt cache:
  /// the immediate retry of the same prompt hits cache like a real
  /// provider's would.
  CallRecord recordWastedCall(const std::string& conversation,
                              const std::string& prompt, const std::string& output);

  /// Totals for one conversation, or for everything when empty.
  [[nodiscard]] UsageTotals totals(const std::string& conversation = {}) const;

  [[nodiscard]] const std::vector<CallRecord>& calls() const noexcept { return calls_; }

  /// Estimated USD cost of a conversation's calls under a model's pricing.
  [[nodiscard]] double estimateCostUsd(const ModelProfile& profile,
                                       const std::string& conversation = {}) const;

  /// Total simulated inference latency (calls x profile latency).
  [[nodiscard]] double estimateLatencySeconds(const ModelProfile& profile,
                                              const std::string& conversation = {}) const;

  void reset();

 private:
  CallRecord record(const std::string& conversation, const std::string& prompt,
                    const std::string& output, bool wasted);

  std::vector<CallRecord> calls_;
  std::map<std::string, std::string> lastPrompt_;  // per conversation
};

}  // namespace stellar::llm

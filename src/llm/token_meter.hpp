// Token accounting with prefix-cache modeling (§5.7).
//
// Every simulated agent call records its assembled prompt and generated
// output. Within one conversation, the longest common prefix with the
// previous prompt counts as cached input — reproducing the paper's
// observation that 85-90% of input tokens resolve from cache across a
// tuning run, because the iterative loop keeps re-sending the same
// context with appended turns.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "llm/model_profile.hpp"

namespace stellar::llm {

struct CallRecord {
  std::string conversation;  ///< e.g. "tuning-agent", "analysis-agent"
  std::size_t inputTokens = 0;
  std::size_t cachedTokens = 0;  ///< subset of inputTokens served from cache
  std::size_t outputTokens = 0;
};

struct UsageTotals {
  std::size_t calls = 0;
  std::size_t inputTokens = 0;
  std::size_t cachedTokens = 0;
  std::size_t outputTokens = 0;

  [[nodiscard]] double cacheHitRate() const noexcept {
    return inputTokens == 0
               ? 0.0
               : static_cast<double>(cachedTokens) / static_cast<double>(inputTokens);
  }
};

class TokenMeter {
 public:
  /// Records one call; returns the record (for transcripts).
  CallRecord recordCall(const std::string& conversation, const std::string& prompt,
                        const std::string& output);

  /// Totals for one conversation, or for everything when empty.
  [[nodiscard]] UsageTotals totals(const std::string& conversation = {}) const;

  [[nodiscard]] const std::vector<CallRecord>& calls() const noexcept { return calls_; }

  /// Estimated USD cost of a conversation's calls under a model's pricing.
  [[nodiscard]] double estimateCostUsd(const ModelProfile& profile,
                                       const std::string& conversation = {}) const;

  /// Total simulated inference latency (calls x profile latency).
  [[nodiscard]] double estimateLatencySeconds(const ModelProfile& profile,
                                              const std::string& conversation = {}) const;

  void reset();

 private:
  std::vector<CallRecord> calls_;
  std::map<std::string, std::string> lastPrompt_;  // per conversation
};

}  // namespace stellar::llm

#include "llm/knowledge.hpp"

#include <algorithm>
#include <cmath>

#include "util/expr.hpp"
#include "util/rng.hpp"

namespace stellar::llm {

namespace {

std::uint64_t hashName(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h = util::mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

/// Resolver for range expressions: system facts plus other parameters'
/// *default* values (good enough for offline resolution; the online tuner
/// re-evaluates dependent bounds against the live config through
/// pfs::paramBounds).
std::optional<double> resolveSymbol(std::string_view name,
                                    const manual::SystemFacts& facts) {
  if (const auto v = facts.resolve(name)) {
    return v;
  }
  if (const manual::ParamFact* other = manual::findParamFact(name)) {
    return static_cast<double>(other->defaultValue);
  }
  return std::nullopt;
}

std::string wrongDefinitionFor(const manual::ParamFact& fact, std::uint64_t h) {
  // Plausible-but-wrong mechanisms, the style Fig. 2 illustrates (e.g.
  // describing statahead_max as an attribute-cache size).
  static const char* templates[] = {
      "Controls the size of the client attribute cache used to satisfy "
      "repeated metadata lookups without contacting the server.",
      "Sets the number of background scanning threads the client spawns to "
      "prefetch directory contents into memory.",
      "Determines how many outstanding lock revocations a server tolerates "
      "before throttling the client.",
      "Specifies the granularity at which the client aggregates dirty pages "
      "before handing them to the network layer.",
      "Distributes the files of a directory more evenly across all storage "
      "targets, improving balance for small files.",
  };
  const auto pick = h % (sizeof(templates) / sizeof(templates[0]));
  return std::string{templates[pick]} + " (recalled for " + fact.name + ")";
}

}  // namespace

const char* corruptionName(CorruptionKind kind) noexcept {
  switch (kind) {
    case CorruptionKind::None: return "none";
    case CorruptionKind::WrongRange: return "wrong-range";
    case CorruptionKind::WrongDefinition: return "wrong-definition";
    case CorruptionKind::FlippedDirection: return "flipped-direction";
  }
  return "?";
}

ResolvedRange resolveRange(const manual::ParamFact& fact,
                           const manual::SystemFacts& facts) {
  const auto resolver = [&facts](std::string_view name) {
    return resolveSymbol(name, facts);
  };
  ResolvedRange range;
  range.min = fact.minExpr.empty()
                  ? 0
                  : static_cast<std::int64_t>(
                        std::llround(util::evaluateExpression(fact.minExpr, resolver)));
  range.max = fact.maxExpr.empty()
                  ? range.min
                  : static_cast<std::int64_t>(
                        std::llround(util::evaluateExpression(fact.maxExpr, resolver)));
  return range;
}

ParamKnowledge groundedKnowledge(const manual::ParamFact& fact,
                                 const manual::SystemFacts& facts) {
  const ResolvedRange range = resolveRange(fact, facts);
  ParamKnowledge k;
  k.param = fact.name;
  k.description = fact.description;
  k.ioImpact = fact.ioImpact;
  k.minValue = range.min;
  k.maxValue = range.max;
  k.defaultValue = fact.defaultValue;
  k.source = KnowledgeSource::RagExtraction;
  k.corruption = CorruptionKind::None;
  return k;
}

ParamKnowledge recallFromMemory(const manual::ParamFact& fact,
                                const ModelProfile& profile,
                                const manual::SystemFacts& facts, std::uint64_t salt) {
  ParamKnowledge k = groundedKnowledge(fact, facts);
  k.source = KnowledgeSource::ModelMemory;

  // Deterministic per (model, parameter, salt): the same model gives the
  // same wrong answer when asked twice — the behaviour Fig. 2 shows.
  const std::uint64_t h =
      hashName(fact.name, hashName(profile.name, util::mix64(0xFAC7, salt)));
  util::Rng rng{h};
  if (!rng.chance(profile.hallucinationRate * 3.0)) {
    // Well-known parameter: recalled accurately. The 3x multiplier models
    // domain-specific parameters being rarer in training data than the
    // average fact (the paper's premise for why PFS tuning hallucinates).
    return k;
  }

  const double kindDraw = rng.uniform();
  if (kindDraw < 0.45) {
    k.corruption = CorruptionKind::WrongRange;
    // Believed max off by a large factor in either direction (Fig. 2: all
    // three models report the wrong maximum for statahead_max).
    const double factor = rng.chance(0.5) ? rng.uniform(2.5, 16.0)
                                          : 1.0 / rng.uniform(2.5, 16.0);
    k.maxValue = std::max<std::int64_t>(
        k.minValue + 1,
        static_cast<std::int64_t>(static_cast<double>(k.maxValue) * factor));
  } else if (kindDraw < 0.8) {
    k.corruption = CorruptionKind::WrongDefinition;
    k.description = wrongDefinitionFor(fact, rng.next());
    k.ioImpact =
        "Believed to improve performance whenever the value is increased.";
  } else {
    k.corruption = CorruptionKind::FlippedDirection;
    k.ioImpact =
        "(recalled, inverted) The benefit direction of this parameter is "
        "misremembered: the model believes the opposite adjustment of the "
        "documented one helps.";
  }
  return k;
}

}  // namespace stellar::llm

#include "service/fairness.hpp"

#include <algorithm>

namespace stellar::service {

DrrScheduler::DrrScheduler(double quantum)
    : quantum_(std::max(quantum, 0.01)) {}

void DrrScheduler::setPolicy(const std::string& tenant, TenantPolicy policy) {
  policy.weight = std::max(policy.weight, 0.01);
  lanes_[tenant].policy = policy;
}

TenantPolicy DrrScheduler::policy(const std::string& tenant) const {
  const auto it = lanes_.find(tenant);
  return it == lanes_.end() ? TenantPolicy{} : it->second.policy;
}

void DrrScheduler::push(const std::string& tenant, SessionId primary) {
  lanes_[tenant].fifo.push_back(primary);
  ++queued_;
}

std::optional<SessionId> DrrScheduler::next() {
  if (queued_ == 0 || lanes_.empty()) {
    return std::nullopt;
  }
  // A lane can only be served if it has work and a free running slot; when
  // no lane qualifies the loop below would spin forever, so answer first.
  bool eligible = false;
  for (const auto& [name, lane] : lanes_) {
    if (!lane.fifo.empty() && lane.running < lane.policy.maxRunning) {
      eligible = true;
      break;
    }
  }
  if (!eligible) {
    return std::nullopt;  // every queued tenant is at its running cap
  }
  // Textbook DRR adapted to serve-one-per-call: a lane is credited
  // quantum * weight once on ENTRY (when the cursor advances onto it) and
  // keeps serving on subsequent calls while its deficit lasts — so a
  // weight-2 tenant drains twice as fast as a weight-1 tenant, instead of
  // strict alternation. Each full wrap credits every eligible lane, so
  // some deficit reaches 1.0 after finitely many wraps (low-weight tenants
  // just take more) and the loop terminates.
  auto it = lanes_.find(cursor_);
  if (it == lanes_.end()) {
    it = lanes_.begin();
    TenantLane& entered = it->second;
    if (!entered.fifo.empty() && entered.running < entered.policy.maxRunning) {
      entered.deficit += quantum_ * entered.policy.weight;
    }
  }
  while (true) {
    TenantLane& lane = it->second;
    if (!lane.fifo.empty() && lane.running < lane.policy.maxRunning &&
        lane.deficit >= 1.0) {
      lane.deficit -= 1.0;
      const SessionId primary = lane.fifo.front();
      lane.fifo.pop_front();
      --queued_;
      ++lane.running;
      cursor_ = it->first;  // stay on this lane while its deficit lasts
      return primary;
    }
    if (lane.fifo.empty()) {
      // An idle tenant keeps no deficit: credit must not accumulate while
      // there is nothing to serve, or a long-idle tenant would later burst
      // past its weight share.
      lane.deficit = 0.0;
    }
    ++it;
    if (it == lanes_.end()) {
      it = lanes_.begin();
    }
    TenantLane& entered = it->second;
    if (!entered.fifo.empty() && entered.running < entered.policy.maxRunning) {
      // Credit on entry only — capped or idle lanes earn nothing.
      entered.deficit += quantum_ * entered.policy.weight;
    }
  }
}

std::vector<SessionId> DrrScheduler::drain() {
  std::vector<SessionId> out;
  for (auto& [tenant, lane] : lanes_) {  // std::map: tenant-sorted
    for (const SessionId primary : lane.fifo) {
      out.push_back(primary);
    }
    lane.fifo.clear();
    lane.deficit = 0.0;
  }
  queued_ = 0;
  return out;
}

void DrrScheduler::release(const std::string& tenant) {
  const auto it = lanes_.find(tenant);
  if (it != lanes_.end() && it->second.running > 0) {
    --it->second.running;
  }
}

std::size_t DrrScheduler::queuedFor(const std::string& tenant) const {
  const auto it = lanes_.find(tenant);
  return it == lanes_.end() ? 0 : it->second.fifo.size();
}

std::size_t DrrScheduler::runningFor(const std::string& tenant) const {
  const auto it = lanes_.find(tenant);
  return it == lanes_.end() ? 0 : it->second.running;
}

}  // namespace stellar::service

#include "service/fleet_store.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/file.hpp"

namespace stellar::service {

namespace {

void appendJsonLine(const std::string& path, const util::Json& doc) {
  util::ensureParentDir(path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for append: " + path);
  }
  const std::string text = doc.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("short write appending to " + path);
  }
}

void splitPath(const std::string& path, std::string& dir, std::string& name) {
  const std::size_t slash = path.find_last_of('/');
  dir = slash == std::string::npos ? "." : path.substr(0, slash);
  name = slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

FleetStore::FleetStore(std::string basePath, exp::StoreOptions options)
    : basePath_(std::move(basePath)), options_(options),
      base_(basePath_, options) {
  publishSnapshot();
}

std::shared_ptr<const exp::ExperienceStore> FleetStore::snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

std::string FleetStore::tenantShardPath(const std::string& tenant) const {
  return basePath_ + ".tenant-" + tenant;
}

void FleetStore::appendRecord(const std::string& tenant,
                              exp::ExperienceRecord record) {
  record.tenant = tenant;
  if (basePath_.empty()) {
    const util::MutexLock lock{mutex_};
    pending_[tenant].push_back(std::move(record));
  } else {
    const util::Json line = record.toJson();
    const util::MutexLock lock{mutex_};
    appendJsonLine(tenantShardPath(tenant), line);
  }
  noteCounter("service.store.shard_appends");
}

void FleetStore::deferOutcome(std::vector<std::string> sourceIds, bool regressed,
                              bool confirmed) {
  const util::MutexLock lock{mutex_};
  outcomes_.push_back(Outcome{std::move(sourceIds), regressed, confirmed});
}

std::size_t FleetStore::commit() {
  std::size_t absorbed = 0;
  if (basePath_.empty()) {
    std::map<std::string, std::vector<exp::ExperienceRecord>> pending;
    {
      const util::MutexLock lock{mutex_};
      pending.swap(pending_);
    }
    for (auto& [tenant, records] : pending) {  // std::map: tenant-sorted
      std::sort(records.begin(), records.end(),
                [](const exp::ExperienceRecord& a, const exp::ExperienceRecord& b) {
                  return a.id < b.id;
                });
      for (exp::ExperienceRecord& record : records) {
        (void)base_.append(std::move(record));
        ++absorbed;
      }
    }
    base_.compact();
  } else {
    std::string dir;
    std::string name;
    splitPath(basePath_, dir, name);
    absorbed = base_.absorbShardDir(dir, name + ".tenant-");
  }

  std::vector<Outcome> outcomes;
  {
    const util::MutexLock lock{mutex_};
    outcomes.swap(outcomes_);
  }
  // Deterministic order: penalize/confirm are commutative increments, but a
  // sorted journal keeps the base-store file reproducible too.
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) {
              if (a.sourceIds != b.sourceIds) {
                return a.sourceIds < b.sourceIds;
              }
              if (a.regressed != b.regressed) {
                return a.regressed < b.regressed;
              }
              return a.confirmed < b.confirmed;
            });
  for (const Outcome& outcome : outcomes) {
    base_.observeWarmStartOutcome(outcome.sourceIds, outcome.regressed,
                                  outcome.confirmed);
  }
  if (!outcomes.empty()) {
    base_.compact();
  }

  publishSnapshot();
  noteCounter("service.store.absorbed", static_cast<double>(absorbed));
  return absorbed;
}

void FleetStore::publishSnapshot() {
  exp::StoreOptions snapOptions = options_;
  auto snap = std::make_shared<exp::ExperienceStore>("", snapOptions);
  for (exp::ExperienceRecord& record : base_.records()) {
    (void)snap->append(std::move(record));
  }
  snapshot_.store(std::shared_ptr<const exp::ExperienceStore>(std::move(snap)),
                  std::memory_order_release);
  noteCounter("service.store.snapshot_swaps");
}

void FleetStore::noteCounter(const char* name, double delta) const {
  if (options_.counters != nullptr) {
    options_.counters->counter(name).add(delta);
  }
}

}  // namespace stellar::service

// TuningService: the stellard daemon core (DESIGN.md §9).
//
// An in-process, multi-tenant tuning-session service: clients submit
// SubmitOptions, get a SessionId back immediately, and poll/wait for the
// TuningRunResult document. Four layers stack under the API:
//
//   1. Async sessions — submissions are admitted, queued, and executed on
//      a util::ThreadPool; per-cell SessionJournals (PR 7) plus a service
//      manifest make a killed service resumable bit-identically.
//   2. Coalescing — sessions that agree on the cell key (workload
//      fingerprint, cluster scale, knob space; see session.hpp) share one
//      engine run; results fan out to every member session.
//   3. Admission + fairness — bounded outstanding-session counts (global
//      and per tenant) reject overload with a typed reason; queued cells
//      dispatch in deficit-round-robin order (fairness.hpp) so a greedy
//      tenant cannot starve the fleet.
//   4. Fleet memory — every session recalls from the FleetStore's
//      immutable snapshot and files its experience into a per-tenant
//      shard; commit() absorbs the shards and swaps the snapshot.
//
// Determinism law (the service analogue of the engine's kill/resume law):
// for a fixed submission schedule and starting store, the set of
// per-session result documents is byte-identical at any worker count, and
// a killed-and-resumed service produces the same documents as an
// uninterrupted one. The design choices that make this hold:
//   - a cell's run is a pure function of (cell spec, recall snapshot);
//     the snapshot changes only in commit(), which requires idleness;
//   - admission decisions depend on *outstanding* sessions (submitted
//     minus retired via wait), which the driver's schedule fully
//     determines — never on instantaneous queue depth or time;
//   - `coalesced` means "not the first submission of this key in this
//     instance", independent of completion timing or manifest replay;
//   - result documents exclude wall-clock stamps and the replay flag.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "service/fairness.hpp"
#include "service/fleet_store.hpp"
#include "service/session.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace stellar::service {

struct ServiceOptions {
  /// Fleet experience store path; "" = memory-only (no manifest, no
  /// session journals — tests and benches that want a blank slate).
  std::string storePath;
  exp::StoreOptions store;
  /// Crash-resume manifest; defaults to `<storePath>.manifest`.
  std::string manifestPath;
  /// Per-cell session-journal directory; defaults to `<storePath>.sessions`.
  std::string sessionDir;
  /// Worker threads == max concurrently running cells.
  std::size_t workers = 4;
  /// Global admission bound on outstanding (unretired) sessions.
  std::size_t maxOutstanding = 256;
  /// Fairness policy for tenants without an explicit entry.
  TenantPolicy defaultPolicy;
  std::map<std::string, TenantPolicy> tenants;
  /// Deficit-round-robin credit per scheduler visit.
  double quantum = 1.0;
  /// Deterministic interrupt: only the first N *fresh* (non-replayed)
  /// cells in submission order may run; later ones complete as
  /// Interrupted (0 = unlimited). The service analogue of the engine's
  /// maxMeasurements kill switch — submission order, not dispatch order,
  /// decides, so the interrupted set is identical at any worker count.
  std::size_t maxFreshSessions = 0;
  obs::CounterRegistry* counters = nullptr;  ///< nullable, non-owning
  obs::Tracer* tracer = nullptr;             ///< nullable, non-owning
  /// Injected monotonic nanosecond clock for session latency stamps
  /// (nullable: stamps stay 0). Injection keeps src/service free of wall
  /// clocks (stellar-lint DET-CLOCK); latency never enters result docs.
  std::uint64_t (*clock)() = nullptr;
};

/// Monotonic counters mirrored into the registry as service.* metrics.
struct ServiceStats {
  std::size_t submitted = 0;    ///< accepted sessions
  std::size_t coalesced = 0;    ///< accepted sessions that joined a live cell
  std::size_t completed = 0;    ///< sessions finished with a result doc
  std::size_t failed = 0;       ///< sessions finished with an error
  std::size_t rejected = 0;     ///< submissions refused by admission control
  std::size_t replayed = 0;     ///< sessions satisfied from the manifest
  std::size_t interrupted = 0;  ///< sessions cut off by stop()/fresh cap
  std::size_t freshRuns = 0;    ///< engine runs actually dispatched
  std::size_t commits = 0;
  std::size_t peakOutstanding = 0;
};

/// In-process service client surface == this class's public methods; a
/// network front end would proxy exactly these calls.
class TuningService {
 public:
  explicit TuningService(ServiceOptions options);
  /// Stops (interrupting still-queued cells) and joins the workers.
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Admission-checked submission; returns a session id or a typed
  /// rejection. Never blocks on engine work.
  [[nodiscard]] SubmitResult submit(const SubmitOptions& request);

  /// Non-blocking state probe (Queued for unknown ids never issued).
  [[nodiscard]] SessionState poll(SessionId id) const;

  /// Blocks until the session is terminal, returns its result, and
  /// *retires* it — freeing the admission slot. Idempotent: a second wait
  /// on the same id returns the same result without double-retiring.
  /// (Opted out of the thread-safety analysis: the condition-variable wait
  /// needs mutex_.native(), which the analysis cannot see through.)
  [[nodiscard]] SessionResult wait(SessionId id) STELLAR_NO_THREAD_SAFETY_ANALYSIS;

  /// wait() for every unretired session, ascending id order.
  [[nodiscard]] std::vector<SessionResult> drainAll();

  /// Single-writer fleet-store commit (absorb shards, fold outcomes, swap
  /// snapshot). Requires idleness — throws std::logic_error if any cell is
  /// queued or running, because a mid-flight snapshot swap would break the
  /// determinism law.
  std::size_t commit();

  /// Stop accepting work and interrupt still-queued cells; running cells
  /// finish. Idempotent.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }
  [[nodiscard]] FleetStore& fleetStore() noexcept { return fleet_; }

 private:
  /// One engine run shared by every coalesced member session.
  struct Cell {
    std::string key;
    SubmitOptions request;  ///< first submitter's request defines the run
    SessionState state = SessionState::Queued;
    bool replayed = false;
    std::string error;
    std::string docLine;  ///< canonical dumped result JSON ("" = none)
    std::vector<SessionId> members;
  };

  struct Session {
    std::string tenant;
    std::string key;
    bool coalesced = false;
    bool retired = false;
    std::uint64_t submitNanos = 0;
    std::uint64_t completeNanos = 0;
  };

  void loadManifestLocked() STELLAR_REQUIRES(mutex_);
  void pumpLocked() STELLAR_REQUIRES(mutex_);
  void finishCell(const std::string& key, SessionState state, std::string error,
                  std::string docLine) STELLAR_EXCLUDES(mutex_);
  void settleCellLocked(Cell& cell, SessionState state, std::string error,
                        std::string docLine) STELLAR_REQUIRES(mutex_);
  /// Stats/counter bookkeeping for one member reaching a terminal cell.
  void accountTerminalLocked(const Cell& cell) STELLAR_REQUIRES(mutex_);
  void runCell(std::string key, SubmitOptions request);
  [[nodiscard]] SessionResult resultLocked(SessionId id) STELLAR_REQUIRES(mutex_);
  [[nodiscard]] TenantPolicy policyFor(const std::string& tenant) const;
  [[nodiscard]] std::uint64_t now() const;
  void noteCounter(const char* name, double delta = 1.0) const;
  void noteTenantCounter(const char* name, const std::string& tenant) const;

  ServiceOptions options_;
  FleetStore fleet_;
  mutable util::Mutex mutex_;
  std::condition_variable terminal_;  ///< waits on mutex_.native()
  std::map<std::string, Cell> cells_ STELLAR_GUARDED_BY(mutex_);
  std::map<SessionId, Session> sessions_ STELLAR_GUARDED_BY(mutex_);
  /// Manifest replay: cell key -> settled line from a prior invocation.
  std::map<std::string, util::Json> manifest_ STELLAR_GUARDED_BY(mutex_);
  DrrScheduler scheduler_ STELLAR_GUARDED_BY(mutex_);
  SessionId nextId_ STELLAR_GUARDED_BY(mutex_) = 1;
  std::size_t outstanding_ STELLAR_GUARDED_BY(mutex_) = 0;
  std::map<std::string, std::size_t> tenantOutstanding_ STELLAR_GUARDED_BY(mutex_);
  std::size_t runningCells_ STELLAR_GUARDED_BY(mutex_) = 0;
  std::size_t freshCells_ STELLAR_GUARDED_BY(mutex_) = 0;  ///< fresh-cap ledger
  bool stopping_ STELLAR_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ STELLAR_GUARDED_BY(mutex_);
  util::Mutex manifestMutex_;
  /// Declared last: destroyed first, so the pool drains and joins while
  /// every member the tasks touch is still alive.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace stellar::service

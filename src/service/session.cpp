#include "service/session.hpp"

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace stellar::service {

const char* sessionStateName(SessionState state) noexcept {
  switch (state) {
    case SessionState::Queued:
      return "queued";
    case SessionState::Running:
      return "running";
    case SessionState::Completed:
      return "completed";
    case SessionState::Failed:
      return "failed";
    case SessionState::Interrupted:
      return "interrupted";
  }
  return "unknown";
}

const char* rejectReasonName(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::QueueFull:
      return "queue_full";
    case RejectReason::TenantQuota:
      return "tenant_quota";
    case RejectReason::Stopped:
      return "stopped";
    case RejectReason::BadRequest:
      return "bad_request";
  }
  return "unknown";
}

util::Json SubmitOptions::toJson() const {
  util::Json doc = util::Json::makeObject();
  doc.set("tenant", tenant);
  doc.set("workload", workload);
  doc.set("seed", static_cast<double>(seed));
  doc.set("model", model);
  doc.set("faults", faults);
  doc.set("scale", scale);
  doc.set("ranks", static_cast<double>(ranks));
  doc.set("warm_start", warmStart);
  return doc;
}

SubmitOptions SubmitOptions::fromJson(const util::Json& json) {
  SubmitOptions opts;  // absent fields keep the struct defaults
  opts.tenant = json.getString("tenant", opts.tenant);
  opts.workload = json.getString("workload");
  opts.seed = static_cast<std::uint64_t>(
      json.getNumber("seed", static_cast<double>(opts.seed)));
  opts.model = json.getString("model", opts.model);
  opts.faults = json.getString("faults", opts.faults);
  opts.scale = json.getNumber("scale", opts.scale);
  opts.ranks = static_cast<std::uint32_t>(json.getNumber("ranks", opts.ranks));
  opts.warmStart = json.getBool("warm_start", opts.warmStart);
  return opts;
}

bool validTenantId(const std::string& tenant) noexcept {
  if (tenant.empty()) {
    return false;
  }
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string cellKey(const SubmitOptions& request) {
  return request.workload + "|" + std::to_string(request.seed) + "|" +
         request.model + "|" + (request.faults.empty() ? "none" : request.faults) +
         "|" + util::formatDouble(request.scale, 6) + "|" +
         std::to_string(request.ranks);
}

std::string cellFileStem(const std::string& key) {
  std::string safe;
  safe.reserve(key.size());
  for (const char c : key) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    safe.push_back(keep ? c : '_');
  }
  if (safe.size() > 48) {
    safe.resize(48);
  }
  return safe + "-" + std::to_string(util::hash64(key));
}

util::Json SessionResult::toJson() const {
  util::Json doc = util::Json::makeObject();
  doc.set("session", static_cast<double>(id));
  doc.set("tenant", tenant);
  doc.set("cell", key);
  doc.set("state", sessionStateName(state));
  doc.set("coalesced", coalesced);
  if (!error.empty()) {
    doc.set("error", error);
  }
  if (!cellDoc.isNull()) {
    doc.set("result", cellDoc);
  }
  return doc;
}

}  // namespace stellar::service

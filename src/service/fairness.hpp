// Weighted per-tenant fairness for the stellard dispatch queue.
//
// Classic deficit round robin over per-tenant FIFOs: each visit of the
// rotating cursor credits a tenant `quantum * weight` deficit; serving one
// queued cell costs one unit. A tenant with weight 2 therefore drains twice
// as fast as a weight-1 tenant under contention, and a greedy tenant that
// floods the queue cannot starve the others — every tenant with queued work
// is visited once per round, bounding its wait by the round length, not by
// the greedy tenant's backlog.
//
// Determinism: tenants live in a std::map (sorted iteration), the cursor
// advances by tenant name, and next() has no time or randomness inputs —
// the same push/next/release call sequence always yields the same dispatch
// order, which the 1-vs-8-worker byte-compare law depends on.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/session.hpp"

namespace stellar::service {

/// Per-tenant fairness knobs (service-level defaults apply when a tenant
/// was never configured explicitly).
struct TenantPolicy {
  double weight = 1.0;  ///< relative drain rate; clamped to >= 0.01
  /// Admission bound: queued + running + unclaimed-result sessions.
  std::size_t maxOutstanding = 64;
  /// Concurrency cap: cells of this tenant running at once.
  std::size_t maxRunning = 4;
};

/// Deficit-round-robin queue of dispatchable cells. Not thread-safe; the
/// owning TuningService calls it under its own mutex.
class DrrScheduler {
 public:
  explicit DrrScheduler(double quantum = 1.0);

  void setPolicy(const std::string& tenant, TenantPolicy policy);
  [[nodiscard]] TenantPolicy policy(const std::string& tenant) const;

  /// Enqueue a cell (identified by its primary session id) for `tenant`.
  void push(const std::string& tenant, SessionId primary);

  /// Pick the next cell to dispatch, honouring weights and per-tenant
  /// running caps. Returns nothing when every queued tenant is at its cap
  /// (or the queue is empty). The served tenant's running count is bumped;
  /// the caller must pair it with release() when the cell finishes.
  [[nodiscard]] std::optional<SessionId> next();

  /// A cell of `tenant` finished; frees one running slot.
  void release(const std::string& tenant);

  /// Empties every queue (tenant-sorted, FIFO within a tenant) without
  /// touching running counts — stop() interrupts the drained cells.
  [[nodiscard]] std::vector<SessionId> drain();

  [[nodiscard]] std::size_t queued() const noexcept { return queued_; }
  [[nodiscard]] std::size_t queuedFor(const std::string& tenant) const;
  [[nodiscard]] std::size_t runningFor(const std::string& tenant) const;

 private:
  struct TenantLane {
    TenantPolicy policy;
    std::deque<SessionId> fifo;
    double deficit = 0.0;
    std::size_t running = 0;
  };

  double quantum_;
  std::map<std::string, TenantLane> lanes_;  // sorted: deterministic rounds
  /// Lane currently holding the serve (credited on entry, kept while its
  /// deficit lasts); "" before the first dispatch.
  std::string cursor_;
  std::size_t queued_ = 0;
};

}  // namespace stellar::service

// Session surface of the stellard service core: what a client submits, the
// states a session moves through, and the typed outcomes it can end in.
// The service is an in-process library (ServiceClient == TuningService
// method calls) so the whole surface stays deterministic and testable; a
// network front end would serialize exactly these structs.
//
// Coalescing identity: sessions whose requests agree on the
// (workload-fingerprint, cluster, knob-space) cell — workload, seed, scale,
// ranks, model, fault spec — share ONE engine run and fan the result out.
// The tenant is deliberately NOT part of the cell key: cross-tenant
// coalescing is the point of a fleet-wide service. Tenancy governs
// fairness, admission, and store shard layout instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/json.hpp"

namespace stellar::service {

/// Monotonic per-service session handle (1-based; 0 is never issued).
using SessionId = std::uint64_t;

enum class SessionState {
  Queued,       ///< admitted, waiting for a dispatch slot
  Running,      ///< the cell's engine run is in flight
  Completed,    ///< result available (fresh run, fan-out, or manifest replay)
  Failed,       ///< the cell's run threw deterministically (bad request data)
  Interrupted,  ///< the service was stopped/capped before the cell ran
};
[[nodiscard]] const char* sessionStateName(SessionState state) noexcept;

/// Why admission control refused a submission.
enum class RejectReason {
  QueueFull,    ///< global outstanding-session bound reached
  TenantQuota,  ///< per-tenant outstanding-session bound reached
  Stopped,      ///< the service no longer accepts work
  BadRequest,   ///< malformed submission (empty workload, bad tenant id)
};
[[nodiscard]] const char* rejectReasonName(RejectReason reason) noexcept;

/// One tuning-session request (the service-side analogue of the CLI's
/// `tune` argument surface).
struct SubmitOptions {
  std::string tenant = "default";
  std::string workload;
  std::uint64_t seed = 1;
  std::string model = "claude-3.7-sonnet";
  std::string faults;  ///< fault spec/scenario; "" = clean weather
  double scale = 0.05;
  std::uint32_t ranks = 50;
  bool warmStart = true;  ///< recall fleet history for this session

  [[nodiscard]] util::Json toJson() const;
  /// Absent fields keep the struct defaults (workload stays "" and is then
  /// rejected by admission as BadRequest); mistyped fields throw JsonError.
  [[nodiscard]] static SubmitOptions fromJson(const util::Json& json);
};

/// Tenant ids become file-name components (shard journals) and metric
/// labels, so they are restricted to [a-z0-9_-], non-empty.
[[nodiscard]] bool validTenantId(const std::string& tenant) noexcept;

/// Stable coalescing identity of a request: the cell every duplicate
/// submission shares. Excludes the tenant (see file comment) and the
/// warmStart flag (recall changes how a run starts, not which cell it is —
/// but mixed warmStart duplicates still share the first submitter's run).
[[nodiscard]] std::string cellKey(const SubmitOptions& request);

/// Filesystem-safe stem for per-cell artifacts (session journals):
/// sanitized key prefix plus an FNV-1a hash suffix for uniqueness.
[[nodiscard]] std::string cellFileStem(const std::string& key);

struct Rejection {
  RejectReason reason = RejectReason::QueueFull;
  std::string detail;
};

/// Outcome of TuningService::submit — a session id, or a typed rejection.
struct SubmitResult {
  std::optional<SessionId> id;
  std::optional<Rejection> rejection;

  [[nodiscard]] bool accepted() const noexcept { return id.has_value(); }
};

/// Terminal session outcome handed back by wait()/drainAll().
struct SessionResult {
  SessionId id = 0;
  std::string tenant;
  std::string key;
  SessionState state = SessionState::Queued;
  bool coalesced = false;  ///< a prior submission already owned this cell
  /// The cell result came from the resume manifest instead of a fresh run.
  /// Deliberately excluded from toJson(): it is the one field that
  /// distinguishes a resumed service from an uninterrupted one, and the
  /// resume law byte-compares the documents across both.
  bool replayedFromManifest = false;
  std::string error;  ///< set for Failed/Interrupted sessions
  /// Canonical engine-run document of the cell (dump+parse normalized);
  /// null for Failed/Interrupted sessions. Shared across fan-out.
  util::Json cellDoc;
  /// Latency stamps from ServiceOptions::clock (0 when no clock is
  /// injected); excluded from toJson() for the same determinism reason.
  std::uint64_t submitNanos = 0;
  std::uint64_t completeNanos = 0;

  /// The byte-compared per-session document: identical across worker
  /// counts and across kill/resume for the same submission schedule.
  [[nodiscard]] util::Json toJson() const;
};

}  // namespace stellar::service

#include "service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "faults/fault_plan.hpp"
#include "llm/model_profile.hpp"
#include "obs/trace.hpp"
#include "util/file.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "workloads/workloads.hpp"

namespace stellar::service {

namespace {

constexpr const char* kComponent = "service";

[[nodiscard]] bool terminalState(SessionState state) noexcept {
  return state == SessionState::Completed || state == SessionState::Failed ||
         state == SessionState::Interrupted;
}

void appendJsonLine(const std::string& path, const util::Json& doc) {
  util::ensureParentDir(path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for append: " + path);
  }
  const std::string text = doc.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("short write appending to " + path);
  }
}

}  // namespace

TuningService::TuningService(ServiceOptions options)
    : options_(std::move(options)),
      fleet_(options_.storePath, options_.store),
      scheduler_(options_.quantum) {
  if (options_.manifestPath.empty() && !options_.storePath.empty()) {
    options_.manifestPath = options_.storePath + ".manifest";
  }
  if (options_.sessionDir.empty() && !options_.storePath.empty()) {
    options_.sessionDir = options_.storePath + ".sessions";
  }
  {
    const util::MutexLock lock{mutex_};
    for (const auto& [tenant, policy] : options_.tenants) {
      scheduler_.setPolicy(tenant, policy);
    }
    loadManifestLocked();
  }
  pool_ = std::make_unique<util::ThreadPool>(options_.workers);
}

TuningService::~TuningService() {
  stop();
  // Destroying the pool runs every already-dispatched cell to completion
  // and joins; only then do the maps the tasks touch go away.
  pool_.reset();
}

void TuningService::loadManifestLocked() {
  if (options_.manifestPath.empty() || !util::fileExists(options_.manifestPath)) {
    return;
  }
  std::size_t lineNo = 0;
  for (const std::string& line :
       util::split(util::readFile(options_.manifestPath), '\n')) {
    ++lineNo;
    if (util::trim(line).empty()) {
      continue;
    }
    try {
      util::Json doc = util::Json::parse(line);
      const std::string key = doc.getString("cell");
      if (key.empty()) {
        throw util::JsonError("manifest line without a cell key");
      }
      manifest_[key] = std::move(doc);  // last write wins
    } catch (const util::JsonError& e) {
      util::logLine(util::LogLevel::Warn, kComponent,
                    options_.manifestPath + ":" + std::to_string(lineNo) +
                        ": skipping corrupt manifest line (" + e.what() + ")");
    }
  }
}

SubmitResult TuningService::submit(const SubmitOptions& request) {
  const std::uint64_t stamp = now();
  const util::MutexLock lock{mutex_};
  const auto reject = [&](RejectReason reason, std::string detail) {
    ++stats_.rejected;
    noteCounter("service.sessions.rejected");
    SubmitResult out;
    out.rejection = Rejection{reason, std::move(detail)};
    return out;
  };
  if (stopping_) {
    return reject(RejectReason::Stopped, "service is stopping");
  }
  if (request.workload.empty()) {
    return reject(RejectReason::BadRequest, "empty workload name");
  }
  if (!validTenantId(request.tenant)) {
    return reject(RejectReason::BadRequest,
                  "invalid tenant id (want [a-z0-9_-]+): " + request.tenant);
  }
  // Admission bounds are counted over *outstanding* sessions — accepted and
  // not yet retired by wait() — so the verdict is a pure function of the
  // driver's submit/wait schedule, never of dispatch timing.
  if (outstanding_ >= options_.maxOutstanding) {
    return reject(RejectReason::QueueFull,
                  "outstanding sessions at global bound (" +
                      std::to_string(options_.maxOutstanding) + ")");
  }
  const TenantPolicy policy = policyFor(request.tenant);
  if (tenantOutstanding_[request.tenant] >= policy.maxOutstanding) {
    return reject(RejectReason::TenantQuota,
                  request.tenant + " at tenant bound (" +
                      std::to_string(policy.maxOutstanding) + ")");
  }

  const SessionId id = nextId_++;
  Session session;
  session.tenant = request.tenant;
  session.key = cellKey(request);
  session.submitNanos = stamp;
  ++outstanding_;
  ++tenantOutstanding_[request.tenant];
  stats_.peakOutstanding = std::max(stats_.peakOutstanding, outstanding_);
  if (options_.counters != nullptr) {
    options_.counters->gauge("service.queue.peak_depth")
        .setMax(static_cast<double>(outstanding_));
  }
  ++stats_.submitted;
  noteCounter("service.sessions.submitted");
  noteTenantCounter("service.sessions.submitted", request.tenant);

  const auto cellIt = cells_.find(session.key);
  if (cellIt != cells_.end()) {
    // Coalesce: every duplicate of a key already submitted to this
    // instance rides the first submission's run (live or already settled).
    session.coalesced = true;
    ++stats_.coalesced;
    noteCounter("service.sessions.coalesced");
    Cell& cell = cellIt->second;
    cell.members.push_back(id);
    if (terminalState(cell.state)) {
      session.completeNanos = stamp;
      accountTerminalLocked(cell);
    }
  } else {
    Cell cell;
    cell.key = session.key;
    cell.request = request;
    cell.members.push_back(id);
    const auto replayIt = manifest_.find(session.key);
    if (replayIt != manifest_.end()) {
      // Resume: a prior invocation settled this cell; replay its line
      // instead of re-running the engine.
      const util::Json& doc = replayIt->second;
      cell.replayed = true;
      cell.state = doc.getString("state") == "failed" ? SessionState::Failed
                                                      : SessionState::Completed;
      cell.error = doc.getString("error");
      if (doc.contains("result")) {
        cell.docLine = doc.at("result").dump();
      }
      session.completeNanos = stamp;
      accountTerminalLocked(cell);
    } else if (options_.maxFreshSessions != 0 &&
               freshCells_ >= options_.maxFreshSessions) {
      // Deterministic kill switch: the cap counts fresh cells in
      // *submission* order, so the interrupted set does not depend on how
      // fast workers drain the queue.
      cell.state = SessionState::Interrupted;
      cell.error = "fresh-session cap reached (" +
                   std::to_string(options_.maxFreshSessions) + ")";
      session.completeNanos = stamp;
      accountTerminalLocked(cell);
    } else {
      ++freshCells_;
      scheduler_.setPolicy(request.tenant, policy);
      scheduler_.push(request.tenant, id);
    }
    cells_.emplace(session.key, std::move(cell));
  }
  sessions_.emplace(id, std::move(session));
  pumpLocked();
  terminal_.notify_all();
  SubmitResult out;
  out.id = id;
  return out;
}

void TuningService::accountTerminalLocked(const Cell& cell) {
  switch (cell.state) {
    case SessionState::Completed:
      ++stats_.completed;
      noteCounter("service.sessions.completed");
      break;
    case SessionState::Failed:
      ++stats_.failed;
      noteCounter("service.sessions.failed");
      break;
    case SessionState::Interrupted:
      ++stats_.interrupted;
      noteCounter("service.sessions.interrupted");
      break;
    case SessionState::Queued:
    case SessionState::Running:
      break;
  }
  if (cell.replayed) {
    ++stats_.replayed;
    noteCounter("service.sessions.replayed");
  }
}

void TuningService::pumpLocked() {
  if (stopping_) {
    return;
  }
  while (runningCells_ < pool_->threadCount()) {
    const std::optional<SessionId> primary = scheduler_.next();
    if (!primary.has_value()) {
      break;
    }
    const Session& session = sessions_.at(*primary);
    Cell& cell = cells_.at(session.key);
    cell.state = SessionState::Running;
    ++runningCells_;
    ++stats_.freshRuns;
    noteCounter("service.dispatch.fresh_runs");
    std::string key = cell.key;
    SubmitOptions request = cell.request;
    (void)pool_->submit([this, key = std::move(key),
                         request = std::move(request)]() mutable {
      runCell(std::move(key), std::move(request));
    });
  }
}

void TuningService::runCell(std::string key, SubmitOptions request) {
  auto span = obs::beginSpan(options_.tracer, "service", key.c_str());
  try {
    faults::FaultPlan plan;
    if (!request.faults.empty()) {
      plan = faults::parseFaultSpec(request.faults);
    }
    pfs::SimulatorOptions simOpts;
    simOpts.counters = options_.counters;
    simOpts.tracer = options_.tracer;
    if (!request.faults.empty()) {
      simOpts.faults = &plan;
    }
    core::StellarOptions engineOpts;
    engineOpts.seed = request.seed;
    engineOpts.agent.seed = request.seed;
    engineOpts.agent.model = llm::profileByName(request.model);
    std::shared_ptr<const exp::ExperienceStore> snapshot;
    std::unique_ptr<SnapshotRecallProvider> recall;
    if (request.warmStart) {
      snapshot = fleet_.snapshot();
      recall = std::make_unique<SnapshotRecallProvider>(snapshot, &fleet_);
      engineOpts.warmStart = recall.get();
    }
    std::unique_ptr<core::SessionJournal> journal;
    if (!options_.sessionDir.empty()) {
      const std::string path =
          options_.sessionDir + "/" + cellFileStem(key) + ".jsonl";
      util::ensureParentDir(path);
      journal = std::make_unique<core::SessionJournal>(path);
      engineOpts.journal = journal.get();
    }
    core::StellarEngine engine{pfs::PfsSimulator{std::move(simOpts)},
                               std::move(engineOpts)};
    const core::TuningRunResult run = engine.tune(workloads::byName(
        request.workload,
        {.ranks = request.ranks, .scale = request.scale, .seed = request.seed}));
    exp::ExperienceRecord record =
        exp::recordFromRun(run, request.seed, request.model, request.faults);
    record.id = key;  // cell identity: a re-run dedups, not duplicates
    fleet_.appendRecord(request.tenant, std::move(record));
    finishCell(key, SessionState::Completed, "", run.toJson().dump());
  } catch (const std::exception& e) {
    // Deterministic per-cell failures (unknown workload/model, bad fault
    // spec) settle the cell as Failed; the task never leaks an exception
    // into the pool.
    finishCell(key, SessionState::Failed, e.what(), "");
  }
}

void TuningService::finishCell(const std::string& key, SessionState state,
                               std::string error, std::string docLine) {
  if (!options_.manifestPath.empty()) {
    util::Json line = util::Json::makeObject();
    line.set("cell", key);
    line.set("state", sessionStateName(state));
    if (!error.empty()) {
      line.set("error", error);
    }
    if (!docLine.empty()) {
      line.set("result", util::Json::parse(docLine));
    }
    // Canonicalize through dump+parse so a fresh cell and a resumed cell
    // (parsed from its manifest line) settle to the same bytes.
    const util::MutexLock lock{manifestMutex_};
    appendJsonLine(options_.manifestPath, util::Json::parse(line.dump()));
  }
  {
    const util::MutexLock lock{mutex_};
    Cell& cell = cells_.at(key);
    settleCellLocked(cell, state, std::move(error), std::move(docLine));
    scheduler_.release(cell.request.tenant);
    --runningCells_;
    pumpLocked();
  }
  terminal_.notify_all();
}

void TuningService::settleCellLocked(Cell& cell, SessionState state,
                                     std::string error, std::string docLine) {
  cell.state = state;
  cell.error = std::move(error);
  cell.docLine = std::move(docLine);
  const std::uint64_t stamp = now();
  for (const SessionId member : cell.members) {
    Session& session = sessions_.at(member);
    session.completeNanos = stamp;
    accountTerminalLocked(cell);
  }
}

SessionState TuningService::poll(SessionId id) const {
  const util::MutexLock lock{mutex_};
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("unknown session id " + std::to_string(id));
  }
  return cells_.at(it->second.key).state;
}

SessionResult TuningService::wait(SessionId id) {
  std::unique_lock<std::mutex> lock{mutex_.native()};
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("unknown session id " + std::to_string(id));
  }
  terminal_.wait(lock, [&] {
    return terminalState(cells_.at(it->second.key).state);
  });
  SessionResult result = resultLocked(id);
  Session& session = it->second;
  if (!session.retired) {
    session.retired = true;
    --outstanding_;
    --tenantOutstanding_[session.tenant];
  }
  return result;
}

std::vector<SessionResult> TuningService::drainAll() {
  std::vector<SessionId> ids;
  {
    const util::MutexLock lock{mutex_};
    for (const auto& [id, session] : sessions_) {  // std::map: ascending ids
      if (!session.retired) {
        ids.push_back(id);
      }
    }
  }
  std::vector<SessionResult> out;
  out.reserve(ids.size());
  for (const SessionId id : ids) {
    out.push_back(wait(id));
  }
  return out;
}

SessionResult TuningService::resultLocked(SessionId id) {
  const Session& session = sessions_.at(id);
  const Cell& cell = cells_.at(session.key);
  SessionResult result;
  result.id = id;
  result.tenant = session.tenant;
  result.key = session.key;
  result.state = cell.state;
  result.coalesced = session.coalesced;
  result.replayedFromManifest = cell.replayed;
  result.error = cell.error;
  if (!cell.docLine.empty()) {
    result.cellDoc = util::Json::parse(cell.docLine);
  }
  result.submitNanos = session.submitNanos;
  result.completeNanos = session.completeNanos;
  return result;
}

std::size_t TuningService::commit() {
  const util::MutexLock lock{mutex_};
  if (runningCells_ > 0 || scheduler_.queued() > 0) {
    throw std::logic_error(
        "commit requires an idle service (a mid-flight snapshot swap would "
        "break the determinism law)");
  }
  ++stats_.commits;
  noteCounter("service.commits");
  // The fleet store has its own lock and never calls back into the
  // service, so holding mutex_ across the commit just makes the
  // idle-check + swap atomic against concurrent submits.
  return fleet_.commit();
}

void TuningService::stop() {
  {
    const util::MutexLock lock{mutex_};
    if (stopping_) {
      return;
    }
    stopping_ = true;
    for (const SessionId primary : scheduler_.drain()) {
      const Session& session = sessions_.at(primary);
      Cell& cell = cells_.at(session.key);
      settleCellLocked(cell, SessionState::Interrupted,
                       "service stopped before dispatch", "");
    }
  }
  terminal_.notify_all();
}

ServiceStats TuningService::stats() const {
  const util::MutexLock lock{mutex_};
  return stats_;
}

TenantPolicy TuningService::policyFor(const std::string& tenant) const {
  const auto it = options_.tenants.find(tenant);
  return it == options_.tenants.end() ? options_.defaultPolicy : it->second;
}

std::uint64_t TuningService::now() const {
  return options_.clock == nullptr ? 0 : options_.clock();
}

void TuningService::noteCounter(const char* name, double delta) const {
  if (options_.counters != nullptr) {
    options_.counters->counter(name).add(delta);
  }
}

void TuningService::noteTenantCounter(const char* name,
                                      const std::string& tenant) const {
  if (options_.counters != nullptr) {
    options_.counters->counter(name, {{"tenant", tenant}}).add(1.0);
  }
}

}  // namespace stellar::service

// FleetStore: the stellard service's concurrent-writer mode for the
// ExperienceStore (DESIGN.md §9d).
//
// The single-writer store (PR 3) is kept exactly as-is as the durable
// "base" generation. Around it:
//   - every worker thread APPENDS finished-session records to a per-tenant
//     shard journal (`<store>.tenant-<id>`) — short critical section, no
//     contention with recalls;
//   - every engine run RECALLS from an immutable snapshot of the base
//     store, published through std::atomic<std::shared_ptr<const ...>> —
//     lock-free reads, safe against a concurrent commit;
//   - a single-writer COMMIT (service idle) re-lists the shard directory
//     under the base-store lock, absorbs the shards, folds in deferred
//     warm-start outcomes, compacts, then builds a fresh snapshot and
//     swaps the pointer.
//
// Because the snapshot only ever changes at commit points (never while a
// session is in flight), a session's result is a pure function of its cell
// spec and the snapshot generation — the keystone of the service
// determinism law (same schedule ⇒ byte-identical results at any worker
// count).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/experience_store.hpp"
#include "util/thread_annotations.hpp"

namespace stellar::service {

class FleetStore {
 public:
  /// Opens the base store at `basePath` and publishes the first snapshot.
  /// Empty path = memory-only (appends collect in memory until commit).
  explicit FleetStore(std::string basePath, exp::StoreOptions options = {});

  [[nodiscard]] const std::string& basePath() const noexcept { return basePath_; }
  /// Records in the committed base generation.
  [[nodiscard]] std::size_t baseSize() const { return base_.size(); }

  /// Lock-free read of the current immutable recall snapshot.
  [[nodiscard]] std::shared_ptr<const exp::ExperienceStore> snapshot() const;

  /// Shard journal path for `tenant` (meaningless for memory-only stores).
  [[nodiscard]] std::string tenantShardPath(const std::string& tenant) const;

  /// Concurrent-writer append of a finished session's record to the
  /// tenant's shard journal. Durable immediately (single flushed line);
  /// visible to recalls only after the next commit().
  void appendRecord(const std::string& tenant, exp::ExperienceRecord record);

  /// Queue a warm-start outcome observed against the current snapshot;
  /// applied to the base store (sorted, deterministic) at commit().
  void deferOutcome(std::vector<std::string> sourceIds, bool regressed,
                    bool confirmed);

  /// Single-writer commit: absorb every `<name>.tenant-*` shard in the
  /// store directory (listed under the base-store lock — satellite fix for
  /// shards appearing mid-scan), fold in deferred outcomes, compact, and
  /// swap in a fresh snapshot. The caller must guarantee no session is in
  /// flight. Returns the number of records absorbed.
  std::size_t commit();

 private:
  struct Outcome {
    std::vector<std::string> sourceIds;
    bool regressed = false;
    bool confirmed = false;
  };

  void publishSnapshot();
  void noteCounter(const char* name, double delta = 1.0) const;

  std::string basePath_;
  exp::StoreOptions options_;
  exp::ExperienceStore base_;  // thread-safe on its own mutex
  std::atomic<std::shared_ptr<const exp::ExperienceStore>> snapshot_;
  mutable util::Mutex mutex_;
  /// Memory-only mode: pending appends by tenant (file mode uses shards).
  std::map<std::string, std::vector<exp::ExperienceRecord>> pending_
      STELLAR_GUARDED_BY(mutex_);
  std::vector<Outcome> outcomes_ STELLAR_GUARDED_BY(mutex_);
};

/// Per-run WarmStartProvider handed to each engine: recalls from the
/// snapshot pinned at dispatch (so even a mid-run commit — which the
/// service never performs — could not change what this run sees) and
/// defers outcome feedback to the fleet store's next commit.
class SnapshotRecallProvider final : public core::WarmStartProvider {
 public:
  SnapshotRecallProvider(std::shared_ptr<const exp::ExperienceStore> snapshot,
                         FleetStore* fleet)
      : snapshot_(std::move(snapshot)), fleet_(fleet) {}

  [[nodiscard]] std::optional<core::WarmStartHint> warmStart(
      const agents::IoReport& report) const override {
    return snapshot_ == nullptr ? std::nullopt : snapshot_->warmStart(report);
  }

  void observeWarmStartOutcome(const std::vector<std::string>& sourceIds,
                               bool regressed, bool confirmed) override {
    if ((regressed || confirmed) && fleet_ != nullptr) {
      fleet_->deferOutcome(sourceIds, regressed, confirmed);
    }
  }

 private:
  std::shared_ptr<const exp::ExperienceStore> snapshot_;
  FleetStore* fleet_;
};

}  // namespace stellar::service

#include "darshan/recorder_log.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace stellar::darshan {

namespace {

const char* functionName(pfs::OpKind kind) {
  switch (kind) {
    case pfs::OpKind::Mkdir: return "mkdir";
    case pfs::OpKind::Create: return "creat";
    case pfs::OpKind::Open: return "open";
    case pfs::OpKind::Close: return "close";
    case pfs::OpKind::Write: return "write";
    case pfs::OpKind::Read: return "read";
    case pfs::OpKind::Stat: return "stat";
    case pfs::OpKind::Unlink: return "unlink";
    case pfs::OpKind::Fsync: return "fsync";
    case pfs::OpKind::Barrier: return "MPI_Barrier";
    case pfs::OpKind::Compute: return "compute";
  }
  return "?";
}

}  // namespace

RecorderLog recorderTrace(const pfs::JobSpec& job, const pfs::RunResult& result) {
  RecorderLog log;
  log.nprocs = job.rankCount();
  log.runTime = result.wallSeconds;
  std::size_t totalOps = 0;
  for (const auto& program : job.ranks) {
    totalOps += program.size();
  }
  log.events.reserve(totalOps);

  for (pfs::RankId r = 0; r < job.rankCount(); ++r) {
    const auto& program = job.ranks[r];
    const double finish =
        r < result.ranks.size() ? result.ranks[r].finishTime : result.wallSeconds;
    const double step =
        program.empty() ? 0.0 : finish / static_cast<double>(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
      const pfs::IoOp& op = program[i];
      if (op.kind == pfs::OpKind::Compute || op.kind == pfs::OpKind::Barrier) {
        continue;  // Recorder's POSIX layer does not log these
      }
      RecorderEvent event;
      event.rank = static_cast<std::int32_t>(r);
      event.function = functionName(op.kind);
      if (op.kind == pfs::OpKind::Mkdir) {
        event.fileName = job.dirs[op.dir].name;
      } else if (op.file != pfs::kInvalidFile) {
        event.fileName = job.files[op.file].name;
      }
      event.offset = op.offset;
      event.size = op.size;
      event.startTime = step * static_cast<double>(i);
      log.events.push_back(std::move(event));
    }
  }
  return log;
}

std::string RecorderLog::serialize() const {
  std::ostringstream out;
  out << "# recorder trace\n";
  out << "# nprocs: " << nprocs << "\n";
  out << "# run time: " << runTime << "\n";
  for (const RecorderEvent& e : events) {
    out << e.rank << "\t" << e.function << "\t" << e.fileName << "\t" << e.offset
        << "\t" << e.size << "\t" << e.startTime << "\n";
  }
  return out.str();
}

RecorderLog RecorderLog::parse(const std::string& text) {
  RecorderLog log;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      const auto colon = line.find(':');
      if (colon == std::string::npos) {
        continue;
      }
      const std::string key{util::trim(line.substr(1, colon - 1))};
      const std::string value{util::trim(line.substr(colon + 1))};
      if (key == "nprocs") {
        log.nprocs = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "run time") {
        log.runTime = std::stod(value);
      }
      continue;
    }
    const auto fields = util::split(line, '\t');
    if (fields.size() != 6) {
      throw std::runtime_error("malformed recorder line: " + line);
    }
    RecorderEvent event;
    event.rank = static_cast<std::int32_t>(std::stol(fields[0]));
    event.function = fields[1];
    event.fileName = fields[2];
    event.offset = std::stoull(fields[3]);
    event.size = std::stoull(fields[4]);
    event.startTime = std::stod(fields[5]);
    log.events.push_back(std::move(event));
  }
  return log;
}

DarshanLog aggregateRecorder(const RecorderLog& recorder) {
  struct PerFile {
    std::int64_t opens = 0, creates = 0, closes = 0, stats = 0, unlinks = 0,
                 fsyncs = 0, reads = 0, writes = 0;
    std::int64_t bytesRead = 0, bytesWritten = 0;
    std::int64_t seqReads = 0, seqWrites = 0;
    std::uint64_t maxOffset = 0;
    std::uint64_t minAccess = ~std::uint64_t{0};
    std::uint64_t maxAccess = 0;
    std::map<std::uint64_t, std::int64_t> accessCounts;
    std::map<std::int32_t, std::uint64_t> lastReadEnd;   // per rank
    std::map<std::int32_t, std::uint64_t> lastWriteEnd;  // per rank
    std::map<std::int32_t, bool> ranks;
  };
  // Ordered by name for deterministic record order.
  std::map<std::string, PerFile> files;

  for (const RecorderEvent& e : recorder.events) {
    if (e.function == "mkdir" || e.fileName.empty()) {
      continue;
    }
    PerFile& f = files[e.fileName];
    f.ranks[e.rank] = true;
    if (e.function == "creat") {
      ++f.creates;
      ++f.opens;
    } else if (e.function == "open") {
      ++f.opens;
    } else if (e.function == "close") {
      ++f.closes;
    } else if (e.function == "stat") {
      ++f.stats;
    } else if (e.function == "unlink") {
      ++f.unlinks;
    } else if (e.function == "fsync") {
      ++f.fsyncs;
    } else if (e.function == "write" || e.function == "read") {
      const bool isWrite = e.function == "write";
      auto& lastEnd = isWrite ? f.lastWriteEnd[e.rank] : f.lastReadEnd[e.rank];
      const bool sequential = e.offset == lastEnd && (lastEnd != 0 || e.offset == 0);
      lastEnd = e.offset + e.size;
      if (isWrite) {
        ++f.writes;
        f.bytesWritten += static_cast<std::int64_t>(e.size);
        f.seqWrites += sequential ? 1 : 0;
      } else {
        ++f.reads;
        f.bytesRead += static_cast<std::int64_t>(e.size);
        f.seqReads += sequential ? 1 : 0;
      }
      f.maxOffset = std::max(f.maxOffset, e.offset + e.size);
      f.minAccess = std::min(f.minAccess, e.size);
      f.maxAccess = std::max(f.maxAccess, e.size);
      ++f.accessCounts[e.size];
    }
  }

  DarshanLog log;
  log.header.exe = "(recorder aggregation)";
  log.header.nprocs = recorder.nprocs;
  log.header.runTime = recorder.runTime;
  for (const auto& [name, f] : files) {
    Record rec;
    rec.fileName = name;
    rec.rank = f.ranks.size() > 1 ? -1 : f.ranks.begin()->first;
    const auto add = [&rec](const char* counter, std::int64_t v) {
      rec.counters.emplace_back(counter, v);
    };
    add("POSIX_OPENS", f.opens);
    add("POSIX_FILENOS", static_cast<std::int64_t>(f.ranks.size()));
    add("POSIX_READS", f.reads);
    add("POSIX_WRITES", f.writes);
    add("POSIX_SEQ_READS", f.seqReads);
    add("POSIX_SEQ_WRITES", f.seqWrites);
    add("POSIX_BYTES_READ", f.bytesRead);
    add("POSIX_BYTES_WRITTEN", f.bytesWritten);
    add("POSIX_MAX_BYTE_READ",
        f.reads > 0 ? static_cast<std::int64_t>(f.maxOffset) : 0);
    add("POSIX_MAX_BYTE_WRITTEN", static_cast<std::int64_t>(f.maxOffset));
    add("POSIX_STATS", f.stats);
    add("POSIX_FSYNCS", f.fsyncs);
    add("POSIX_UNLINKS", f.unlinks);
    add("POSIX_OPENS_CREATE", f.creates);
    add("POSIX_MODE_CLOSE", f.closes);

    // Top-4 access sizes by count, most frequent first.
    std::vector<std::pair<std::uint64_t, std::int64_t>> sizes{f.accessCounts.begin(),
                                                              f.accessCounts.end()};
    std::stable_sort(sizes.begin(), sizes.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    for (std::size_t i = 0; i < 4; ++i) {
      const std::string prefix = "POSIX_ACCESS" + std::to_string(i + 1);
      const std::uint64_t size = i < sizes.size() ? sizes[i].first : 0;
      const std::int64_t count = i < sizes.size() ? sizes[i].second : 0;
      rec.counters.emplace_back(prefix + "_ACCESS", static_cast<std::int64_t>(size));
      rec.counters.emplace_back(prefix + "_COUNT", count);
    }
    add("POSIX_SIZE_READ_MIN",
        f.minAccess == ~std::uint64_t{0} ? 0 : static_cast<std::int64_t>(f.minAccess));
    add("POSIX_SIZE_READ_MAX", static_cast<std::int64_t>(f.maxAccess));
    add("POSIX_FILE_SHARED_RANKS", static_cast<std::int64_t>(f.ranks.size()));

    // Timing counters cannot be recovered from the op stream.
    for (const auto& name2 : fcounterNames()) {
      rec.fcounters.emplace_back(name2, 0.0);
    }
    log.records.push_back(std::move(rec));
  }
  return log;
}

}  // namespace stellar::darshan

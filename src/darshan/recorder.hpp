// Builds a DarshanLog from a simulated run — the "lightweight,
// no-modification" characterization step the paper relies on (§2.1.2).
#pragma once

#include "darshan/log.hpp"
#include "pfs/job.hpp"
#include "pfs/simulator.hpp"

namespace stellar::darshan {

/// Characterizes one run. Files with no activity are skipped (Darshan only
/// records opened files); files touched by >1 rank become shared records.
[[nodiscard]] DarshanLog characterize(const pfs::JobSpec& job,
                                      const pfs::RunResult& result,
                                      std::uint64_t jobId = 0);

}  // namespace stellar::darshan

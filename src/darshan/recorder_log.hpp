// Recorder-style per-operation trace (§4.3.1: the preprocessing "can be
// replicated for other tracing frameworks such as Recorder").
//
// Where Darshan keeps per-file counters, Recorder logs every I/O operation
// with rank, timestamps, offset, and size. This module produces such a
// trace for a simulated run and aggregates it back into the exact
// dataframe schema the Analysis Agent consumes — demonstrating that the
// analysis pipeline is trace-source agnostic: only the aggregation step
// changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "darshan/log.hpp"
#include "pfs/job.hpp"
#include "pfs/simulator.hpp"

namespace stellar::darshan {

/// One traced operation (Recorder's function-call record, simplified).
struct RecorderEvent {
  std::int32_t rank = 0;
  std::string function;  ///< "open", "write", "read", "stat", ...
  std::string fileName;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  double startTime = 0.0;  ///< seconds from job start (approximate)
};

struct RecorderLog {
  std::uint32_t nprocs = 0;
  double runTime = 0.0;
  std::vector<RecorderEvent> events;

  /// Tab-separated text form (one event per line), parseable back.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static RecorderLog parse(const std::string& text);
};

/// Produces the per-op trace of a run. Timestamps are approximated by
/// spreading each rank's operations over its measured execution time (the
/// tuner consumes pattern features, not exact timings).
[[nodiscard]] RecorderLog recorderTrace(const pfs::JobSpec& job,
                                        const pfs::RunResult& result);

/// Aggregates a Recorder trace into Darshan-equivalent per-file records —
/// the alternative front end to df::tablesFromLog. Timing counters
/// (POSIX_F_*) are not derivable from the op stream and are left at zero.
[[nodiscard]] DarshanLog aggregateRecorder(const RecorderLog& recorder);

}  // namespace stellar::darshan

// Darshan-style I/O characterization log.
//
// Mirrors the structure the paper's preprocessing step consumes (§4.1,
// §4.3.1): a job header plus per-file records of module counters. Counter
// names follow real Darshan's POSIX module conventions so the Analysis
// Agent's queries read like analyses of genuine darshan-parser output.
// Records for files accessed by several ranks are shared records
// (rank == -1), exactly as Darshan reduces them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stellar::darshan {

/// Header block (subset of a real Darshan log header).
struct LogHeader {
  std::string exe;          ///< workload name, stands in for the exe path
  std::uint32_t nprocs = 0;
  double runTime = 0.0;     ///< job wall time, seconds
  std::uint64_t jobId = 0;
};

/// One per-file record: integer counters + floating-point counters.
struct Record {
  std::string fileName;
  std::int32_t rank = -1;  ///< -1 = shared across ranks (Darshan reduced)
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> fcounters;

  [[nodiscard]] std::optional<std::int64_t> counter(std::string_view name) const;
  [[nodiscard]] std::optional<double> fcounter(std::string_view name) const;
};

struct DarshanLog {
  LogHeader header;
  std::vector<Record> records;

  /// Serializes in a darshan-parser-like text format.
  [[nodiscard]] std::string serialize() const;

  /// Parses the text format back; throws std::runtime_error on malformed
  /// input.
  [[nodiscard]] static DarshanLog parse(const std::string& text);
};

/// The integer counter names every record carries, in order.
[[nodiscard]] const std::vector<std::string>& counterNames();

/// The floating-point counter names every record carries, in order.
[[nodiscard]] const std::vector<std::string>& fcounterNames();

/// Human-readable description of each counter, used as the "column
/// description" sidecar the Analysis Agent receives (§4.3.1).
[[nodiscard]] std::string counterDescription(std::string_view name);

}  // namespace stellar::darshan

#include "darshan/recorder.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace stellar::darshan {

DarshanLog characterize(const pfs::JobSpec& job, const pfs::RunResult& result,
                        std::uint64_t jobId) {
  DarshanLog log;
  log.header.exe = job.name;
  log.header.nprocs = job.rankCount();
  log.header.runTime = result.wallSeconds;
  log.header.jobId = jobId;
  log.records.reserve(result.files.size());

  for (pfs::FileId f = 0; f < result.files.size(); ++f) {
    const pfs::FileStats& fs = result.files[f];
    const bool touched = fs.opens + fs.creates + fs.stats + fs.unlinks + fs.readOps +
                             fs.writeOps >
                         0;
    if (!touched) {
      continue;
    }
    Record rec;
    rec.fileName = job.files[f].name;
    const int sharedRanks = std::popcount(fs.rankMask);
    rec.rank = sharedRanks > 1 ? -1
                               : static_cast<std::int32_t>(std::countr_zero(
                                     fs.rankMask == 0 ? 1 : fs.rankMask));

    const auto add = [&rec](const char* name, std::int64_t v) {
      rec.counters.emplace_back(name, v);
    };
    add("POSIX_OPENS", fs.opens + fs.creates);
    add("POSIX_FILENOS", sharedRanks);
    add("POSIX_READS", fs.readOps);
    add("POSIX_WRITES", fs.writeOps);
    add("POSIX_SEQ_READS", fs.seqReads);
    add("POSIX_SEQ_WRITES", fs.seqWrites);
    add("POSIX_BYTES_READ", static_cast<std::int64_t>(fs.bytesRead));
    add("POSIX_BYTES_WRITTEN", static_cast<std::int64_t>(fs.bytesWritten));
    add("POSIX_MAX_BYTE_READ",
        static_cast<std::int64_t>(fs.bytesRead > 0 ? fs.maxOffset : 0));
    add("POSIX_MAX_BYTE_WRITTEN", static_cast<std::int64_t>(fs.maxOffset));
    add("POSIX_STATS", fs.stats);
    add("POSIX_FSYNCS", fs.fsyncs);
    add("POSIX_UNLINKS", fs.unlinks);
    add("POSIX_OPENS_CREATE", fs.creates);
    add("POSIX_MODE_CLOSE", fs.closes);

    // Access-size histogram (top-4), ordered by frequency.
    std::array<std::size_t, 4> order{0, 1, 2, 3};
    std::sort(order.begin(), order.end(), [&fs](std::size_t a, std::size_t b) {
      return fs.accessCount[a] > fs.accessCount[b];
    });
    for (std::size_t i = 0; i < 4; ++i) {
      const std::string prefix = "POSIX_ACCESS" + std::to_string(i + 1);
      rec.counters.emplace_back(prefix + "_ACCESS",
                                static_cast<std::int64_t>(fs.accessSize[order[i]]));
      rec.counters.emplace_back(prefix + "_COUNT",
                                static_cast<std::int64_t>(fs.accessCount[order[i]]));
    }

    add("POSIX_SIZE_READ_MIN",
        fs.minAccess == ~std::uint64_t{0} ? 0 : static_cast<std::int64_t>(fs.minAccess));
    add("POSIX_SIZE_READ_MAX", static_cast<std::int64_t>(fs.maxAccess));
    add("POSIX_FILE_SHARED_RANKS", sharedRanks);

    rec.fcounters.emplace_back("POSIX_F_READ_TIME", fs.readTime);
    rec.fcounters.emplace_back("POSIX_F_WRITE_TIME", fs.writeTime);
    rec.fcounters.emplace_back("POSIX_F_META_TIME", fs.metaTime);

    log.records.push_back(std::move(rec));
  }
  return log;
}

}  // namespace stellar::darshan

#include "darshan/log.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace stellar::darshan {

namespace {

const std::vector<std::string> kCounterNames = {
    "POSIX_OPENS",
    "POSIX_FILENOS",
    "POSIX_READS",
    "POSIX_WRITES",
    "POSIX_SEQ_READS",
    "POSIX_SEQ_WRITES",
    "POSIX_BYTES_READ",
    "POSIX_BYTES_WRITTEN",
    "POSIX_MAX_BYTE_READ",
    "POSIX_MAX_BYTE_WRITTEN",
    "POSIX_STATS",
    "POSIX_FSYNCS",
    "POSIX_UNLINKS",
    "POSIX_OPENS_CREATE",
    "POSIX_MODE_CLOSE",
    "POSIX_ACCESS1_ACCESS",
    "POSIX_ACCESS1_COUNT",
    "POSIX_ACCESS2_ACCESS",
    "POSIX_ACCESS2_COUNT",
    "POSIX_ACCESS3_ACCESS",
    "POSIX_ACCESS3_COUNT",
    "POSIX_ACCESS4_ACCESS",
    "POSIX_ACCESS4_COUNT",
    "POSIX_SIZE_READ_MIN",
    "POSIX_SIZE_READ_MAX",
    "POSIX_FILE_SHARED_RANKS",
};

const std::vector<std::string> kFcounterNames = {
    "POSIX_F_READ_TIME",
    "POSIX_F_WRITE_TIME",
    "POSIX_F_META_TIME",
};

}  // namespace

const std::vector<std::string>& counterNames() { return kCounterNames; }
const std::vector<std::string>& fcounterNames() { return kFcounterNames; }

std::string counterDescription(std::string_view name) {
  if (name == "POSIX_OPENS") return "number of open operations on the file";
  if (name == "POSIX_FILENOS") return "number of distinct file descriptors used";
  if (name == "POSIX_READS") return "number of read operations";
  if (name == "POSIX_WRITES") return "number of write operations";
  if (name == "POSIX_SEQ_READS") return "reads immediately following the previous read offset";
  if (name == "POSIX_SEQ_WRITES") return "writes immediately following the previous write offset";
  if (name == "POSIX_BYTES_READ") return "total bytes read from the file";
  if (name == "POSIX_BYTES_WRITTEN") return "total bytes written to the file";
  if (name == "POSIX_MAX_BYTE_READ") return "highest byte offset read";
  if (name == "POSIX_MAX_BYTE_WRITTEN") return "highest byte offset written (proxy for file size)";
  if (name == "POSIX_STATS") return "number of stat operations";
  if (name == "POSIX_FSYNCS") return "number of fsync operations";
  if (name == "POSIX_UNLINKS") return "number of unlink operations";
  if (name == "POSIX_OPENS_CREATE") return "opens that created the file";
  if (name == "POSIX_MODE_CLOSE") return "number of close operations";
  if (name == "POSIX_ACCESS1_ACCESS") return "most common access size in bytes";
  if (name == "POSIX_ACCESS1_COUNT") return "occurrences of the most common access size";
  if (name == "POSIX_ACCESS2_ACCESS") return "2nd most common access size in bytes";
  if (name == "POSIX_ACCESS2_COUNT") return "occurrences of the 2nd most common access size";
  if (name == "POSIX_ACCESS3_ACCESS") return "3rd most common access size in bytes";
  if (name == "POSIX_ACCESS3_COUNT") return "occurrences of the 3rd most common access size";
  if (name == "POSIX_ACCESS4_ACCESS") return "4th most common access size in bytes";
  if (name == "POSIX_ACCESS4_COUNT") return "occurrences of the 4th most common access size";
  if (name == "POSIX_SIZE_READ_MIN") return "smallest access size observed";
  if (name == "POSIX_SIZE_READ_MAX") return "largest access size observed";
  if (name == "POSIX_FILE_SHARED_RANKS") return "number of distinct ranks that accessed the file";
  if (name == "POSIX_F_READ_TIME") return "cumulative seconds ranks were blocked reading this file";
  if (name == "POSIX_F_WRITE_TIME") return "cumulative seconds ranks were blocked writing this file";
  if (name == "POSIX_F_META_TIME") return "cumulative seconds ranks spent in metadata operations on this file";
  return "undocumented counter";
}

std::optional<std::int64_t> Record::counter(std::string_view name) const {
  for (const auto& [k, v] : counters) {
    if (k == name) {
      return v;
    }
  }
  return std::nullopt;
}

std::optional<double> Record::fcounter(std::string_view name) const {
  for (const auto& [k, v] : fcounters) {
    if (k == name) {
      return v;
    }
  }
  return std::nullopt;
}

std::string DarshanLog::serialize() const {
  std::ostringstream out;
  out << "# darshan log (stellar reproduction)\n";
  out << "# exe: " << header.exe << "\n";
  out << "# nprocs: " << header.nprocs << "\n";
  out << "# run time: " << header.runTime << "\n";
  out << "# jobid: " << header.jobId << "\n";
  for (const Record& rec : records) {
    out << "FILE\t" << rec.rank << "\t" << rec.fileName << "\n";
    for (const auto& [k, v] : rec.counters) {
      out << "C\t" << k << "\t" << v << "\n";
    }
    for (const auto& [k, v] : rec.fcounters) {
      out << "F\t" << k << "\t" << v << "\n";
    }
  }
  return out.str();
}

DarshanLog DarshanLog::parse(const std::string& text) {
  DarshanLog log;
  Record* current = nullptr;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      const auto colon = line.find(':');
      if (colon == std::string::npos) {
        continue;
      }
      const std::string key{util::trim(line.substr(1, colon - 1))};
      const std::string value{util::trim(line.substr(colon + 1))};
      if (key == "exe") {
        log.header.exe = value;
      } else if (key == "nprocs") {
        log.header.nprocs = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "run time") {
        log.header.runTime = std::stod(value);
      } else if (key == "jobid") {
        log.header.jobId = std::stoull(value);
      }
      continue;
    }
    const auto fields = util::split(line, '\t');
    if (fields.size() != 3) {
      throw std::runtime_error("malformed darshan log line: " + line);
    }
    if (fields[0] == "FILE") {
      log.records.emplace_back();
      current = &log.records.back();
      current->rank = static_cast<std::int32_t>(std::stol(fields[1]));
      current->fileName = fields[2];
    } else if (fields[0] == "C") {
      if (current == nullptr) {
        throw std::runtime_error("counter before FILE record");
      }
      current->counters.emplace_back(fields[1], std::stoll(fields[2]));
    } else if (fields[0] == "F") {
      if (current == nullptr) {
        throw std::runtime_error("fcounter before FILE record");
      }
      current->fcounters.emplace_back(fields[1], std::stod(fields[2]));
    } else {
      throw std::runtime_error("unknown darshan log line kind: " + fields[0]);
    }
  }
  return log;
}

}  // namespace stellar::darshan

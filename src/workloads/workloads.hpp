// Workload generators reproducing the paper's evaluation applications
// (§5.1.2-§5.1.3):
//
//   IOR_64K        random 64 KiB transfers to one shared file
//   IOR_16M        sequential 16 MiB transfers to one shared file
//   MDWorkbench_2K metadata benchmark over 2 KiB files
//   MDWorkbench_8K metadata benchmark over 8 KiB files
//   IO500          the multi-phase IOR-Easy/Hard + MDTest-Easy/Hard mix
//   AMReX          block-structured AMR plotfile I/O kernel (shared level
//                  files, large contiguous chunks, interleaved compute)
//   MACSio_512K    MIF-mode multi-physics proxy, 512 KiB objects
//   MACSio_16M     MIF-mode multi-physics proxy, 16 MiB objects
//
// All generators take a `scale` in (0, 1] that shrinks data/file volume
// proportionally so the discrete-event simulation stays fast; the I/O
// *pattern* (access sizes, sharing, phase structure) is scale-invariant,
// which is what the tuner responds to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfs/job.hpp"

namespace stellar::workloads {

struct WorkloadOptions {
  std::uint32_t ranks = 50;       ///< MPI processes (paper: 50 across 5 nodes)
  double scale = 1.0;             ///< volume scale factor, pattern-preserving
  std::uint64_t seed = 42;        ///< randomization seed (IOR -z ordering)
};

[[nodiscard]] pfs::JobSpec ior64k(const WorkloadOptions& opt = {});
[[nodiscard]] pfs::JobSpec ior16m(const WorkloadOptions& opt = {});
[[nodiscard]] pfs::JobSpec mdworkbench(std::uint64_t fileBytes,
                                       const WorkloadOptions& opt = {});
[[nodiscard]] pfs::JobSpec io500(const WorkloadOptions& opt = {});
[[nodiscard]] pfs::JobSpec amrex(const WorkloadOptions& opt = {});
[[nodiscard]] pfs::JobSpec macsio(std::uint64_t objectBytes,
                                  const WorkloadOptions& opt = {});

/// Canonical names used by the figures: IOR_64K, IOR_16M, MDWorkbench_2K,
/// MDWorkbench_8K, IO500, AMReX, MACSio_512K, MACSio_16M.
[[nodiscard]] pfs::JobSpec byName(const std::string& name,
                                  const WorkloadOptions& opt = {});

/// The five benchmark workloads of Fig. 5/6, in paper order.
[[nodiscard]] std::vector<std::string> benchmarkNames();

/// The three real-application workloads of Fig. 7.
[[nodiscard]] std::vector<std::string> realAppNames();

/// Volume scale used by the bench harnesses; reads STELLAR_SCALE from the
/// environment (default 0.2). Full paper-scale is scale=1.
[[nodiscard]] double benchScale();

}  // namespace stellar::workloads

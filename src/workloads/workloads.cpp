#include "workloads/workloads.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace stellar::workloads {

using pfs::FileId;
using pfs::IoOp;
using pfs::JobSpec;
using util::kKiB;
using util::kMiB;

namespace {

std::uint64_t scaled(std::uint64_t value, double scale, std::uint64_t minimum = 1) {
  const auto v = static_cast<std::uint64_t>(static_cast<double>(value) * scale);
  return std::max(minimum, v);
}

void requireOptions(const WorkloadOptions& opt) {
  if (opt.ranks == 0) {
    throw std::invalid_argument("workload needs at least one rank");
  }
  if (opt.scale <= 0.0 || opt.scale > 1.0) {
    throw std::invalid_argument("workload scale must be in (0, 1]");
  }
}

/// Shared-file IOR: rank 0 creates, everyone else opens after a barrier.
void emitSharedOpen(JobSpec& job, FileId file) {
  for (std::uint32_t r = 0; r < job.rankCount(); ++r) {
    if (r == 0) {
      job.ranks[r].push_back(IoOp::create(file));
    }
    job.ranks[r].push_back(IoOp::barrier());
    if (r != 0) {
      job.ranks[r].push_back(IoOp::open(file));
    }
  }
}

/// IOR write or read phase over a shared file. Each rank covers
/// [blockBase, blockBase+blockBytes) in `xferBytes` transfers, randomly
/// permuted when `randomOrder` (IOR -z), sequential otherwise. Read phases
/// shift each rank's block by one *node* worth of ranks so the page cache
/// never serves them (IOR -C reorderTasks).
void emitIorPhase(JobSpec& job, FileId file, std::uint64_t blockBytes,
                  std::uint64_t xferBytes, std::uint32_t segments, bool isWrite,
                  bool randomOrder, std::uint32_t rankShift, util::Rng& rng) {
  const std::uint32_t ranks = job.rankCount();
  const std::uint64_t segmentSpan = blockBytes * ranks;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const std::uint32_t effRank = (r + rankShift) % ranks;
    const std::uint64_t xfersPerBlock = blockBytes / xferBytes;
    std::vector<std::uint64_t> order(xfersPerBlock);
    std::iota(order.begin(), order.end(), 0);
    for (std::uint32_t seg = 0; seg < segments; ++seg) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(seg) * segmentSpan + effRank * blockBytes;
      if (randomOrder) {
        util::Rng perRank{util::mix64(rng.next(), r)};
        perRank.shuffle(order);
      }
      for (const std::uint64_t i : order) {
        const std::uint64_t offset = base + i * xferBytes;
        job.ranks[r].push_back(isWrite ? IoOp::write(file, offset, xferBytes)
                                       : IoOp::read(file, offset, xferBytes));
      }
    }
    if (isWrite) {
      job.ranks[r].push_back(IoOp::fsync(file));
    }
    job.ranks[r].push_back(IoOp::barrier());
  }
}

JobSpec iorCommon(const std::string& name, std::uint64_t blockBytes,
                  std::uint64_t xferBytes, std::uint32_t segments, bool randomOrder,
                  const WorkloadOptions& opt) {
  requireOptions(opt);
  JobSpec job;
  job.name = name;
  job.ranks.resize(opt.ranks);
  const FileId shared = job.addFile("/ior/testfile");

  util::Rng rng{opt.seed};
  emitSharedOpen(job, shared);
  emitIorPhase(job, shared, blockBytes, xferBytes, segments, /*isWrite=*/true,
               randomOrder, /*rankShift=*/0, rng);
  // Read back with ranks shifted by one node (10 ranks) to defeat caching.
  const std::uint32_t shift = std::max<std::uint32_t>(1, opt.ranks / 5);
  emitIorPhase(job, shared, blockBytes, xferBytes, segments, /*isWrite=*/false,
               randomOrder, shift, rng);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    job.ranks[r].push_back(IoOp::close(shared));
  }
  return job;
}

}  // namespace

JobSpec ior64k(const WorkloadOptions& opt) {
  // Paper: each process writes/reads one 128 MiB block with 64 KiB random
  // transfers to a shared file.
  const std::uint64_t block = scaled(128 * kMiB, opt.scale, 64 * kKiB);
  const std::uint64_t xfer = 64 * kKiB;
  return iorCommon("IOR_64K", std::max(block / xfer, std::uint64_t{1}) * xfer, xfer, 1,
                   /*randomOrder=*/true, opt);
}

JobSpec ior16m(const WorkloadOptions& opt) {
  // Paper: three 128 MiB blocks per process with sequential 16 MiB
  // transfers to a shared file. Blocks keep at least four transfers so
  // the stream stays recognizably sequential at reduced scale.
  const std::uint64_t xfer = 16 * kMiB;
  const std::uint64_t block = std::max(scaled(128 * kMiB, opt.scale, 4 * xfer) / xfer,
                                       std::uint64_t{4}) *
                              xfer;
  return iorCommon("IOR_16M", block, xfer, 3, /*randomOrder=*/false, opt);
}

JobSpec mdworkbench(std::uint64_t fileBytes, const WorkloadOptions& opt) {
  requireOptions(opt);
  JobSpec job;
  job.name = fileBytes >= 8 * kKiB ? "MDWorkbench_8K" : "MDWorkbench_2K";
  if (fileBytes != 2 * kKiB && fileBytes != 8 * kKiB) {
    job.name = "MDWorkbench_" + std::to_string(fileBytes / kKiB) + "K";
  }
  job.ranks.resize(opt.ranks);

  // Paper: 10 directories per process, 400 files each, three rounds of
  // (create+write+close | stat | open+read+close | unlink) per file. The
  // phases are grouped across files, as MDWorkbench's precreate/benchmark
  // structure runs them.
  const std::uint32_t dirsPerRank = 10;
  const auto filesPerDir = static_cast<std::uint32_t>(scaled(400, opt.scale, 4));
  const std::uint32_t rounds = 3;

  std::vector<std::vector<FileId>> rankFiles(opt.ranks);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    for (std::uint32_t d = 0; d < dirsPerRank; ++d) {
      const pfs::DirId dir = job.addDir("/mdw/rank" + std::to_string(r) + "/dir" +
                                        std::to_string(d));
      job.ranks[r].push_back(IoOp::mkdir(dir));
      for (std::uint32_t f = 0; f < filesPerDir; ++f) {
        rankFiles[r].push_back(job.addFile(
            "/mdw/rank" + std::to_string(r) + "/dir" + std::to_string(d) + "/file" +
                std::to_string(f),
            dir));
      }
    }
  }

  for (std::uint32_t round = 0; round < rounds; ++round) {
    for (std::uint32_t r = 0; r < opt.ranks; ++r) {
      auto& prog = job.ranks[r];
      for (const FileId f : rankFiles[r]) {
        prog.push_back(IoOp::create(f));
        prog.push_back(IoOp::write(f, 0, fileBytes));
        prog.push_back(IoOp::close(f));
      }
      prog.push_back(IoOp::barrier());
      for (const FileId f : rankFiles[r]) {
        prog.push_back(IoOp::stat(f));
      }
      prog.push_back(IoOp::barrier());
      for (const FileId f : rankFiles[r]) {
        prog.push_back(IoOp::open(f));
        prog.push_back(IoOp::read(f, 0, fileBytes));
        prog.push_back(IoOp::close(f));
      }
      prog.push_back(IoOp::barrier());
      for (const FileId f : rankFiles[r]) {
        prog.push_back(IoOp::unlink(f));
      }
      prog.push_back(IoOp::barrier());
    }
  }
  return job;
}

JobSpec io500(const WorkloadOptions& opt) {
  requireOptions(opt);
  JobSpec job;
  job.name = "IO500";
  job.ranks.resize(opt.ranks);
  util::Rng rng{opt.seed};

  // --- declarations -------------------------------------------------------
  // IOR-Easy: file per process, large sequential transfers.
  std::vector<FileId> easyFiles;
  easyFiles.reserve(opt.ranks);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    easyFiles.push_back(job.addFile("/io500/ior-easy/rank" + std::to_string(r)));
  }
  // IOR-Hard: one shared file, small unaligned transfers (47008 bytes).
  const FileId hardFile = job.addFile("/io500/ior-hard/file");
  // MDTest-Easy: empty files, per-rank dirs; MDTest-Hard: 3901-byte files
  // in one shared dir.
  const auto easyCount = static_cast<std::uint32_t>(scaled(300, opt.scale, 4));
  const auto hardCount = static_cast<std::uint32_t>(scaled(200, opt.scale, 4));
  std::vector<std::vector<FileId>> mdtEasy(opt.ranks);
  std::vector<std::vector<FileId>> mdtHard(opt.ranks);
  const pfs::DirId hardDir = job.addDir("/io500/mdt-hard");
  std::vector<pfs::DirId> easyDirs;
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    easyDirs.push_back(job.addDir("/io500/mdt-easy/rank" + std::to_string(r)));
    for (std::uint32_t f = 0; f < easyCount; ++f) {
      mdtEasy[r].push_back(job.addFile(
          "/io500/mdt-easy/rank" + std::to_string(r) + "/f" + std::to_string(f),
          easyDirs[r]));
    }
    for (std::uint32_t f = 0; f < hardCount; ++f) {
      mdtHard[r].push_back(job.addFile(
          "/io500/mdt-hard/r" + std::to_string(r) + "_f" + std::to_string(f), hardDir));
    }
  }

  // Minimums keep the phase balance representative at small scales: the
  // paper's IO500 is dominated by its IOR phases, so the data volume must
  // not shrink below the point where metadata ops overwhelm the mix.
  const std::uint64_t easyXfer = 1 * kMiB;
  const std::uint64_t easyBlock =
      std::max(scaled(64 * kMiB, opt.scale, 16 * kMiB) / easyXfer, std::uint64_t{1}) *
      easyXfer;
  const std::uint64_t hardXfer = 47008;  // IOR-hard's deliberately awkward size
  const auto hardXfers = static_cast<std::uint32_t>(scaled(512, opt.scale, 96));
  const std::uint64_t mdtHardBytes = 3901;

  const auto barrierAll = [&job] {
    for (auto& prog : job.ranks) {
      prog.push_back(IoOp::barrier());
    }
  };

  // --- phase 1: ior-easy write (file per process, sequential) -------------
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    prog.push_back(IoOp::create(easyFiles[r]));
    for (std::uint64_t off = 0; off < easyBlock; off += easyXfer) {
      prog.push_back(IoOp::write(easyFiles[r], off, easyXfer));
    }
    prog.push_back(IoOp::fsync(easyFiles[r]));
    prog.push_back(IoOp::close(easyFiles[r]));
  }
  barrierAll();

  // --- phase 2: mdtest-easy create (empty files) ---------------------------
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    prog.push_back(IoOp::mkdir(easyDirs[r]));
    for (const FileId f : mdtEasy[r]) {
      prog.push_back(IoOp::create(f));
      prog.push_back(IoOp::close(f));
    }
  }
  barrierAll();

  // --- phase 3: ior-hard write (shared file, interleaved small writes) ----
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    if (r == 0) {
      job.ranks[r].push_back(IoOp::create(hardFile));
    }
  }
  barrierAll();
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    if (r != 0) {
      prog.push_back(IoOp::open(hardFile));
    }
    // Strided layout: write i goes to (i * ranks + rank) * xfer.
    for (std::uint32_t i = 0; i < hardXfers; ++i) {
      const std::uint64_t offset =
          (static_cast<std::uint64_t>(i) * opt.ranks + r) * hardXfer;
      prog.push_back(IoOp::write(hardFile, offset, hardXfer));
    }
    prog.push_back(IoOp::fsync(hardFile));
  }
  barrierAll();

  // --- phase 4: mdtest-hard create (small files, shared dir) --------------
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    if (r == 0) {
      job.ranks[r].push_back(IoOp::mkdir(hardDir));
    }
  }
  barrierAll();
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    for (const FileId f : mdtHard[r]) {
      prog.push_back(IoOp::create(f));
      prog.push_back(IoOp::write(f, 0, mdtHardBytes));
      prog.push_back(IoOp::close(f));
    }
  }
  barrierAll();

  // --- phase 5: ior-easy read (shifted by a node) --------------------------
  const std::uint32_t shift = std::max<std::uint32_t>(1, opt.ranks / 5);
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    const FileId f = easyFiles[(r + shift) % opt.ranks];
    prog.push_back(IoOp::open(f));
    for (std::uint64_t off = 0; off < easyBlock; off += easyXfer) {
      prog.push_back(IoOp::read(f, off, easyXfer));
    }
    prog.push_back(IoOp::close(f));
  }
  barrierAll();

  // --- phase 6: mdtest-easy stat -------------------------------------------
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    for (const FileId f : mdtEasy[(r + shift) % opt.ranks]) {
      prog.push_back(IoOp::stat(f));
    }
  }
  barrierAll();

  // --- phase 7: ior-hard read (random order over the strided records) -----
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    const std::uint32_t effRank = (r + shift) % opt.ranks;
    std::vector<std::uint32_t> order(hardXfers);
    std::iota(order.begin(), order.end(), 0);
    util::Rng perRank{util::mix64(rng.next(), r)};
    perRank.shuffle(order);
    for (const std::uint32_t i : order) {
      const std::uint64_t offset =
          (static_cast<std::uint64_t>(i) * opt.ranks + effRank) * hardXfer;
      prog.push_back(IoOp::read(hardFile, offset, hardXfer));
    }
    prog.push_back(IoOp::close(hardFile));
  }
  barrierAll();

  // --- phase 8: mdtest-hard stat + read ------------------------------------
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    for (const FileId f : mdtHard[(r + shift) % opt.ranks]) {
      prog.push_back(IoOp::stat(f));
    }
    for (const FileId f : mdtHard[(r + shift) % opt.ranks]) {
      prog.push_back(IoOp::open(f));
      prog.push_back(IoOp::read(f, 0, mdtHardBytes));
      prog.push_back(IoOp::close(f));
    }
  }
  barrierAll();

  // --- phase 9: deletes -----------------------------------------------------
  for (std::uint32_t r = 0; r < opt.ranks; ++r) {
    auto& prog = job.ranks[r];
    for (const FileId f : mdtEasy[r]) {
      prog.push_back(IoOp::unlink(f));
    }
    for (const FileId f : mdtHard[r]) {
      prog.push_back(IoOp::unlink(f));
    }
    prog.push_back(IoOp::unlink(easyFiles[r]));
  }
  barrierAll();

  return job;
}

JobSpec amrex(const WorkloadOptions& opt) {
  requireOptions(opt);
  JobSpec job;
  job.name = "AMReX";
  job.ranks.resize(opt.ranks);

  // AMReX plotfile pattern: per checkpoint, ranks funnel their FABs into a
  // bounded set of shared level files (nfiles=8 by default in AMReX's
  // VisMF); each rank appends a large contiguous chunk. Compute phases
  // separate the dumps.
  const std::uint32_t plots = 3;
  const std::uint32_t levels = 3;
  const std::uint32_t nfiles = 8;
  const std::uint64_t chunk =
      std::max(scaled(32 * kMiB, opt.scale, 2 * kMiB) / (256 * kKiB), std::uint64_t{1}) *
      256 * kKiB;
  // Compute scales with the mesh (and hence with the data volume) so the
  // compute/I-O balance stays representative at reduced scale.
  const double computeSeconds = std::max(0.05, 0.5 * opt.scale);

  for (std::uint32_t p = 0; p < plots; ++p) {
    const pfs::DirId plotDir = job.addDir("/amrex/plt" + std::to_string(p));
    const FileId header = job.addFile("/amrex/plt" + std::to_string(p) + "/Header",
                                      plotDir);
    std::vector<std::vector<FileId>> levelFiles(levels);
    for (std::uint32_t l = 0; l < levels; ++l) {
      for (std::uint32_t f = 0; f < nfiles; ++f) {
        levelFiles[l].push_back(job.addFile("/amrex/plt" + std::to_string(p) +
                                                "/Level_" + std::to_string(l) +
                                                "/Cell_D_" + std::to_string(f),
                                            plotDir));
      }
    }

    for (std::uint32_t r = 0; r < opt.ranks; ++r) {
      auto& prog = job.ranks[r];
      prog.push_back(IoOp::compute(computeSeconds));
      if (r == 0) {
        prog.push_back(IoOp::mkdir(plotDir));
        prog.push_back(IoOp::create(header));
        prog.push_back(IoOp::write(header, 0, 24 * kKiB));
        prog.push_back(IoOp::close(header));
        for (std::uint32_t l = 0; l < levels; ++l) {
          for (const FileId f : levelFiles[l]) {
            prog.push_back(IoOp::create(f));
            prog.push_back(IoOp::close(f));
          }
        }
      }
      prog.push_back(IoOp::barrier());
      // Each rank writes its FAB chunk into its assigned level files; the
      // coarser levels shrink by 4x per level (AMR refinement ratio 2 in
      // 2D).
      for (std::uint32_t l = 0; l < levels; ++l) {
        const FileId f = levelFiles[l][r % nfiles];
        const std::uint64_t levelChunk = std::max<std::uint64_t>(chunk >> (2 * l),
                                                                 64 * kKiB);
        const std::uint64_t offset = (r / nfiles) * levelChunk;
        prog.push_back(IoOp::open(f));
        prog.push_back(IoOp::write(f, offset, levelChunk));
        prog.push_back(IoOp::fsync(f));
        prog.push_back(IoOp::close(f));
      }
      prog.push_back(IoOp::barrier());
    }
  }
  return job;
}

JobSpec macsio(std::uint64_t objectBytes, const WorkloadOptions& opt) {
  requireOptions(opt);
  JobSpec job;
  job.name = objectBytes >= 16 * kMiB ? "MACSio_16M" : "MACSio_512K";
  job.ranks.resize(opt.ranks);
  util::Rng rng{opt.seed};

  // MACSio MIF mode: each rank owns one file per dump and writes its mesh
  // parts as a sequence of objects whose sizes vary around the nominal
  // part size (MACSio's -part_size with load imbalance).
  const std::uint32_t dumps = 2;
  // At least four objects per dump so the object-stream structure (and the
  // create/write op balance) survives volume scaling.
  const std::uint64_t perRankBytes = scaled(96 * kMiB, opt.scale, 4 * objectBytes);
  const auto objects = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, perRankBytes / objectBytes));

  for (std::uint32_t d = 0; d < dumps; ++d) {
    const pfs::DirId dir = job.addDir("/macsio/dump" + std::to_string(d));
    for (std::uint32_t r = 0; r < opt.ranks; ++r) {
      auto& prog = job.ranks[r];
      const FileId f = job.addFile("/macsio/dump" + std::to_string(d) + "/part" +
                                       std::to_string(r) + ".silo",
                                   dir);
      if (r == 0) {
        prog.push_back(IoOp::mkdir(dir));
      }
      prog.push_back(IoOp::barrier());
      prog.push_back(IoOp::compute(0.2));
      prog.push_back(IoOp::create(f));
      std::uint64_t offset = 0;
      util::Rng perRank{util::mix64(rng.next(), r)};
      for (std::uint32_t o = 0; o < objects; ++o) {
        // Object size jitter: +/-25% around nominal, 4 KiB aligned.
        const double factor = perRank.uniform(0.75, 1.25);
        std::uint64_t size = static_cast<std::uint64_t>(
                                 static_cast<double>(objectBytes) * factor) /
                             util::kPageSize * util::kPageSize;
        size = std::max<std::uint64_t>(size, util::kPageSize);
        prog.push_back(IoOp::write(f, offset, size));
        offset += size;
      }
      prog.push_back(IoOp::fsync(f));
      prog.push_back(IoOp::close(f));
      prog.push_back(IoOp::barrier());
    }
  }
  return job;
}

JobSpec byName(const std::string& name, const WorkloadOptions& opt) {
  if (name == "IOR_64K") {
    return ior64k(opt);
  }
  if (name == "IOR_16M") {
    return ior16m(opt);
  }
  if (name == "MDWorkbench_2K") {
    return mdworkbench(2 * kKiB, opt);
  }
  if (name == "MDWorkbench_8K") {
    return mdworkbench(8 * kKiB, opt);
  }
  if (name == "IO500") {
    return io500(opt);
  }
  if (name == "AMReX") {
    return amrex(opt);
  }
  if (name == "MACSio_512K") {
    return macsio(512 * kKiB, opt);
  }
  if (name == "MACSio_16M") {
    return macsio(16 * kMiB, opt);
  }
  throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string> benchmarkNames() {
  return {"IOR_64K", "IOR_16M", "MDWorkbench_2K", "MDWorkbench_8K", "IO500"};
}

std::vector<std::string> realAppNames() {
  return {"AMReX", "MACSio_512K", "MACSio_16M"};
}

double benchScale() {
  if (const char* env = std::getenv("STELLAR_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) {
      return v;
    }
  }
  return 0.12;
}

}  // namespace stellar::workloads

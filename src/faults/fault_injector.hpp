// Live fault state over a simulation run.
//
// A FaultInjector turns a FaultPlan (pure data) into O(1) state queries
// the PFS models consult on their hot paths. arm() schedules every window's
// open/close edges through the SimEngine's ordinary event queue, so edges
// order deterministically (FIFO sequence numbers) against client and server
// events — the determinism contract in DESIGN.md rests on this.
//
// Determinism of drop sampling: the injector owns its own Rng seeded from
// mix64(plan.seed, runSeed) and only draws while a drop window is open, so
// attaching a plan never perturbs the engine's random stream — a run with
// no plan is bit-identical to a run with the faults layer absent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace stellar::faults {

class FaultInjector {
 public:
  /// The plan must outlive the injector. `ostCount` sizes the per-OST
  /// state tables; events targeting OSTs past it are ignored.
  FaultInjector(sim::SimEngine& engine, const FaultPlan& plan, std::size_t ostCount,
                std::uint64_t runSeed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attaches (nullable) observability sinks: one "faults" instant per
  /// window edge plus faults.* counters.
  void attachObservability(obs::Tracer* tracer, obs::CounterRegistry* counters) noexcept {
    tracer_ = tracer;
    counters_ = counters;
  }

  /// Schedules every window edge on the engine. Call once, before client
  /// start-of-run events are scheduled, so edge ordering is stable.
  void arm();

  // ---- O(1) hot-path queries ------------------------------------------

  /// Service-time multiplier (>= 1) for the given OST right now.
  [[nodiscard]] double ostSlowdown(std::size_t ost) const noexcept {
    return ost < ostSlowdown_.size() ? ostSlowdown_[ost] : 1.0;
  }

  /// True while an outage window covering this OST is open.
  [[nodiscard]] bool ostDown(std::size_t ost) const noexcept {
    return ost < ostOutageDepth_.size() && ostOutageDepth_[ost] > 0;
  }

  /// Metadata service-time multiplier (>= 1) right now.
  [[nodiscard]] double mdsSlowdown() const noexcept { return mdsSlowdown_; }

  /// Combined per-attempt RPC loss probability right now (0 when no drop
  /// window is open).
  [[nodiscard]] double rpcDropProbability() const noexcept { return rpcDropProb_; }

  /// Extra one-way RPC delivery delay right now, seconds.
  [[nodiscard]] double rpcStallSeconds() const noexcept { return rpcStallSeconds_; }

  /// Bernoulli draw against rpcDropProbability(). Draws from the
  /// injector's private stream, and only when a drop window is open.
  [[nodiscard]] bool sampleRpcDrop() const noexcept {
    return rpcDropProb_ > 0.0 && rng_.chance(rpcDropProb_);
  }

  // ---- Post-run queries -------------------------------------------------

  /// Measurement-noise sigma multiplier (>= 1) for a run spanning
  /// [0, wallSeconds): 1 plus the overlap-weighted excess of every
  /// noise-spike window. Pure function of the plan.
  [[nodiscard]] double noiseMultiplierOver(double wallSeconds) const noexcept;

  [[nodiscard]] std::uint64_t windowsOpened() const noexcept { return windowsOpened_; }

 private:
  void openEvent(const FaultEvent& event);
  void closeEvent(const FaultEvent& event);
  void recompute(FaultKind kind, std::int32_t target);
  void edgeInstant(const FaultEvent& event, bool open);

  sim::SimEngine& engine_;
  const FaultPlan& plan_;
  mutable util::Rng rng_;  ///< drop sampling; independent of engine.rng()

  // Active-event lists per dimension; recompute() folds them into the
  // cached O(1) values below. Edges are rare, so O(active) per edge is
  // fine and avoids floating-point drift from multiply/divide stacks.
  std::vector<const FaultEvent*> active_;

  std::vector<double> ostSlowdown_;       ///< per-OST, >= 1
  std::vector<std::uint32_t> ostOutageDepth_;
  double mdsSlowdown_ = 1.0;
  double rpcDropProb_ = 0.0;
  double rpcStallSeconds_ = 0.0;

  std::uint64_t windowsOpened_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::CounterRegistry* counters_ = nullptr;
};

}  // namespace stellar::faults

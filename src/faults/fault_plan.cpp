#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace stellar::faults {

const char* faultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::OstDegrade: return "ost-degrade";
    case FaultKind::OstOutage: return "ost-outage";
    case FaultKind::MdsOverload: return "mds-overload";
    case FaultKind::RpcDrop: return "rpc-drop";
    case FaultKind::RpcStall: return "rpc-stall";
    case FaultKind::NoiseSpike: return "noise-spike";
    case FaultKind::LlmTimeout: return "llm-timeout";
    case FaultKind::LlmRateLimit: return "llm-rate-limit";
    case FaultKind::LlmTruncated: return "llm-truncated";
    case FaultKind::LlmMalformed: return "llm-malformed";
    case FaultKind::LlmHallucinatedKnob: return "llm-hallucinated-knob";
    case FaultKind::LlmOutOfRange: return "llm-out-of-range";
    case FaultKind::LlmStaleAnalysis: return "llm-stale-analysis";
  }
  return "?";
}

bool isLlmFault(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::LlmTimeout:
    case FaultKind::LlmRateLimit:
    case FaultKind::LlmTruncated:
    case FaultKind::LlmMalformed:
    case FaultKind::LlmHallucinatedKnob:
    case FaultKind::LlmOutOfRange:
    case FaultKind::LlmStaleAnalysis:
      return true;
    case FaultKind::OstDegrade:
    case FaultKind::OstOutage:
    case FaultKind::MdsOverload:
    case FaultKind::RpcDrop:
    case FaultKind::RpcStall:
    case FaultKind::NoiseSpike:
      return false;
  }
  return false;
}

namespace {

[[noreturn]] void badEvent(const FaultEvent& event, const std::string& why) {
  throw FaultSpecError(std::string{faultKindName(event.kind)} + " event: " + why);
}

void validateEvent(const FaultEvent& event) {
  if (!(event.end > event.begin) || event.begin < 0.0) {
    badEvent(event, "window must satisfy 0 <= begin < end (got " +
                        std::to_string(event.begin) + "-" + std::to_string(event.end) + ")");
  }
  switch (event.kind) {
    case FaultKind::OstDegrade:
      if (!(event.magnitude > 0.0) || event.magnitude > 1.0) {
        badEvent(event, "capacity multiplier must be in (0, 1]");
      }
      break;
    case FaultKind::OstOutage:
      break;
    case FaultKind::MdsOverload:
      if (event.magnitude < 1.0) {
        badEvent(event, "overload multiplier must be >= 1");
      }
      break;
    case FaultKind::RpcDrop:
      if (event.magnitude < 0.0 || event.magnitude >= 1.0) {
        badEvent(event, "drop probability must be in [0, 1)");
      }
      break;
    case FaultKind::RpcStall:
      if (event.magnitude < 0.0) {
        badEvent(event, "stall seconds must be >= 0");
      }
      break;
    case FaultKind::NoiseSpike:
      if (event.magnitude < 1.0) {
        badEvent(event, "noise multiplier must be >= 1");
      }
      break;
    case FaultKind::LlmTimeout:
    case FaultKind::LlmRateLimit:
    case FaultKind::LlmTruncated:
    case FaultKind::LlmMalformed:
    case FaultKind::LlmHallucinatedKnob:
    case FaultKind::LlmOutOfRange:
    case FaultKind::LlmStaleAnalysis:
      if (event.magnitude < 0.0 || event.magnitude > 1.0) {
        badEvent(event, "probability must be in [0, 1]");
      }
      break;
  }
  if (!isLlmFault(event.kind) && !event.model.empty()) {
    badEvent(event, "model filter is only meaningful for llm:* kinds");
  }
}

[[noreturn]] void badElement(std::string_view element, const std::string& why) {
  throw FaultSpecError("fault spec element '" + std::string{element} + "': " + why);
}

double parseNumber(std::string_view element, std::string_view token, const char* what) {
  const std::string text{token};
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    badElement(element, std::string{"expected a number for "} + what + ", got '" +
                            text + "'");
  }
  return v;
}

/// Maps the llm:<kind> grammar token to its FaultKind.
FaultKind llmKindByToken(std::string_view element, const std::string& token) {
  if (token == "timeout") return FaultKind::LlmTimeout;
  if (token == "ratelimit") return FaultKind::LlmRateLimit;
  if (token == "truncate") return FaultKind::LlmTruncated;
  if (token == "malformed") return FaultKind::LlmMalformed;
  if (token == "bad-knob") return FaultKind::LlmHallucinatedKnob;
  if (token == "bad-value") return FaultKind::LlmOutOfRange;
  if (token == "stale") return FaultKind::LlmStaleAnalysis;
  badElement(element,
             "unknown llm fault '" + token +
                 "' (expected timeout/ratelimit/truncate/malformed/bad-knob/"
                 "bad-value/stale)");
}

/// Splits the trailing "@<begin>-<end>" window off an element.
std::pair<double, double> parseWindow(std::string_view element, std::string_view tail) {
  const std::size_t dash = tail.find('-');
  if (dash == std::string_view::npos) {
    badElement(element, "expected a window '@<begin>-<end>'");
  }
  const double begin = parseNumber(element, tail.substr(0, dash), "window begin");
  const double end = parseNumber(element, tail.substr(dash + 1), "window end");
  return {begin, end};
}

FaultEvent parseElement(std::string_view element) {
  const std::size_t at = element.find('@');
  const std::string_view head = element.substr(0, at);
  std::vector<std::string> parts = util::split(std::string{head}, ':');

  FaultEvent event;
  const auto requireWindow = [&] {
    if (at == std::string_view::npos) {
      badElement(element, "missing '@<begin>-<end>' window");
    }
    const auto [begin, end] = parseWindow(element, element.substr(at + 1));
    event.begin = begin;
    event.end = end;
  };

  if (parts.size() >= 1 && parts[0] == "ost") {
    if (parts.size() < 3) {
      badElement(element, "expected ost:<idx|*>:<degrade|outage>...");
    }
    if (parts[1] == "*") {
      event.target = kAllTargets;
    } else {
      event.target = static_cast<std::int32_t>(
          parseNumber(element, parts[1], "OST index"));
      if (event.target < 0) {
        badElement(element, "OST index must be >= 0 (or '*')");
      }
    }
    if (parts[2] == "degrade") {
      if (parts.size() != 4) {
        badElement(element, "expected ost:<idx|*>:degrade:<mult>@<begin>-<end>");
      }
      event.kind = FaultKind::OstDegrade;
      event.magnitude = parseNumber(element, parts[3], "capacity multiplier");
    } else if (parts[2] == "outage") {
      if (parts.size() != 3) {
        badElement(element, "expected ost:<idx|*>:outage@<begin>-<end>");
      }
      event.kind = FaultKind::OstOutage;
    } else {
      badElement(element, "unknown ost fault '" + parts[2] + "'");
    }
  } else if (parts.size() == 3 && parts[0] == "mds" && parts[1] == "overload") {
    event.kind = FaultKind::MdsOverload;
    event.magnitude = parseNumber(element, parts[2], "overload multiplier");
  } else if (parts.size() == 3 && parts[0] == "rpc" && parts[1] == "drop") {
    event.kind = FaultKind::RpcDrop;
    event.magnitude = parseNumber(element, parts[2], "drop probability");
  } else if (parts.size() == 3 && parts[0] == "rpc" && parts[1] == "stall") {
    event.kind = FaultKind::RpcStall;
    event.magnitude = parseNumber(element, parts[2], "stall seconds");
  } else if (parts.size() == 3 && parts[0] == "noise" && parts[1] == "spike") {
    event.kind = FaultKind::NoiseSpike;
    event.magnitude = parseNumber(element, parts[2], "noise multiplier");
  } else if (parts.size() >= 1 && parts[0] == "llm") {
    if (parts.size() < 3 || parts.size() > 4) {
      badElement(element, "expected llm:<kind>:<prob>[:<model|*>]@<begin>-<end>");
    }
    event.kind = llmKindByToken(element, parts[1]);
    event.magnitude = parseNumber(element, parts[2], "probability");
    if (parts.size() == 4 && parts[3] != "*") {
      if (parts[3].empty()) {
        badElement(element, "model filter must be non-empty (or '*')");
      }
      event.model = parts[3];
    }
  } else {
    badElement(element,
               "unknown fault kind (expected ost:/mds:overload/rpc:drop/"
               "rpc:stall/noise:spike/llm:<kind>/seed:<n>, or a scenario "
               "name: " +
                   util::join(scenarioNames(), ", ") + ")");
  }
  requireWindow();
  validateEvent(event);
  return event;
}

}  // namespace

void FaultPlan::validate() const {
  for (const FaultEvent& event : events) {
    validateEvent(event);
  }
}

util::Json FaultPlan::toJson() const {
  util::Json root = util::Json::makeObject();
  root.set("seed", static_cast<std::int64_t>(seed));
  util::Json arr = util::Json::makeArray();
  for (const FaultEvent& event : events) {
    util::Json e = util::Json::makeObject();
    e.set("kind", faultKindName(event.kind));
    if (event.target != kAllTargets) {
      e.set("target", static_cast<std::int64_t>(event.target));
    }
    e.set("begin", event.begin);
    e.set("end", event.end);
    e.set("magnitude", event.magnitude);
    if (!event.model.empty()) {
      e.set("model", event.model);
    }
    arr.push(std::move(e));
  }
  root.set("events", std::move(arr));
  return root;
}

std::string FaultPlan::describe() const {
  if (events.empty()) {
    return "(no faults)";
  }
  std::string out;
  for (const FaultEvent& event : events) {
    if (!out.empty()) {
      out += ", ";
    }
    out += faultKindName(event.kind);
    if (event.target != kAllTargets) {
      out += "[ost " + std::to_string(event.target) + "]";
    }
    if (!event.model.empty()) {
      out += "[" + event.model + "]";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, isLlmFault(event.kind) ? " p%.3g @calls %g-%g"
                                                          : " x%.3g @%g-%gs",
                  event.magnitude, event.begin, event.end);
    out += buf;
  }
  return out;
}

FaultPlan parseFaultSpec(std::string_view spec) {
  const std::string trimmed{util::trim(spec)};
  if (trimmed.empty()) {
    return {};
  }
  // A bare scenario name resolves to its canned plan.
  const auto& names = scenarioNames();
  if (std::find(names.begin(), names.end(), trimmed) != names.end()) {
    return scenarioByName(trimmed);
  }
  FaultPlan plan;
  for (const std::string& rawElement : util::split(trimmed, ',')) {
    const std::string element{util::trim(rawElement)};
    if (element.empty()) {
      continue;
    }
    if (element.rfind("seed:", 0) == 0) {
      plan.seed = static_cast<std::uint64_t>(
          parseNumber(element, std::string_view{element}.substr(5), "seed"));
      continue;
    }
    plan.events.push_back(parseElement(element));
  }
  return plan;
}

const std::vector<std::string>& scenarioNames() {
  static const std::vector<std::string> names{"degraded-ost", "flaky-network",
                                              "mds-storm",    "flaky-llm",
                                              "degrading-llm", "llm-outage"};
  return names;
}

FaultPlan scenarioByName(std::string_view name) {
  // Window times are calibrated against the benchmark workloads at the
  // default CLI scale (runs last tens of simulated seconds): every window
  // overlaps the bulk of the run without outliving short configurations.
  if (name == "degraded-ost") {
    // One OST at 30% capacity for most of the run, plus a lossy patch that
    // forces visible timeout/retry traffic. Tuning should still win.
    return FaultPlan{
        .seed = 0xDE6,
        .events = {{FaultKind::OstDegrade, 1, 1.0, 60.0, 0.3, ""},
                   {FaultKind::RpcDrop, kAllTargets, 2.0, 12.0, 0.2, ""}}};
  }
  if (name == "flaky-network") {
    // Sustained light loss with periodic stall windows: every RPC class
    // sees timeouts; nothing is down long enough to exhaust the budget.
    return FaultPlan{
        .seed = 0xF1A,
        .events = {{FaultKind::RpcDrop, kAllTargets, 0.0, 90.0, 0.05, ""},
                   {FaultKind::RpcStall, kAllTargets, 5.0, 10.0, 0.002, ""},
                   {FaultKind::RpcStall, kAllTargets, 20.0, 25.0, 0.002, ""}}};
  }
  if (name == "mds-storm") {
    // Competing metadata traffic: the MDS serves everything 6x slower for
    // a long window while measurements get noisier.
    return FaultPlan{
        .seed = 0x3D5,
        .events = {{FaultKind::MdsOverload, kAllTargets, 1.0, 45.0, 6.0, ""},
                   {FaultKind::NoiseSpike, kAllTargets, 0.0, 45.0, 3.0, ""}}};
  }
  // The LLM scenarios' windows are call indices; a tuning session makes a
  // few dozen model calls, so 0-999 means "the whole session".
  if (name == "flaky-llm") {
    // Every failure mode at moderate rates. Per-call retry absorbs the
    // transport faults (chance all retries fail ~ p^4) and the sanitizer
    // absorbs the content faults: sessions stay on the primary rung.
    return FaultPlan{
        .seed = 0xF1B,
        .events = {{FaultKind::LlmTimeout, kAllTargets, 0.0, 999.0, 0.15, ""},
                   {FaultKind::LlmRateLimit, kAllTargets, 0.0, 999.0, 0.1, ""},
                   {FaultKind::LlmTruncated, kAllTargets, 0.0, 999.0, 0.1, ""},
                   {FaultKind::LlmMalformed, kAllTargets, 0.0, 999.0, 0.1, ""},
                   {FaultKind::LlmHallucinatedKnob, kAllTargets, 0.0, 999.0, 0.25, ""},
                   {FaultKind::LlmOutOfRange, kAllTargets, 0.0, 999.0, 0.25, ""},
                   {FaultKind::LlmStaleAnalysis, kAllTargets, 0.0, 999.0, 0.2, ""}}};
  }
  if (name == "degrading-llm") {
    // The premium primary model degrades into a hard outage after a few
    // calls while cheaper models stay healthy: the circuit breaker trips
    // and the session lands on the fallback-model rung.
    return FaultPlan{
        .seed = 0xDE9,
        .events = {{FaultKind::LlmTimeout, kAllTargets, 1.0, 2.0, 0.5, "claude"},
                   {FaultKind::LlmTimeout, kAllTargets, 2.0, 999.0, 1.0, "claude"}}};
  }
  if (name == "llm-outage") {
    // Total provider outage after the opening calls: every model times out
    // forever, both breakers trip, and the session must finish on the
    // rule-based baseline rung without wedging.
    return FaultPlan{
        .seed = 0x0A7,
        .events = {{FaultKind::LlmTimeout, kAllTargets, 1.0, 999.0, 1.0, ""}}};
  }
  throw FaultSpecError("unknown fault scenario '" + std::string{name} +
                       "' (available: " + util::join(scenarioNames(), ", ") + ")");
}

}  // namespace stellar::faults

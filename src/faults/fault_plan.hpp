// Deterministic fault plans.
//
// A FaultPlan is pure data: a seed plus a list of fault windows over
// *simulated* time. The paper tunes a live Lustre cluster where OSTs slow
// down, RPCs stall, and measurements are noisy; a plan reproduces that
// weather deterministically — the same (job, config, seed, plan) replays
// bit-for-bit, which is what makes resilience testable (ISSUE 2).
//
// Event taxonomy (see DESIGN.md "Fault model"):
//   ost degrade   capacity multiplier in (0, 1]; service times scale 1/m
//   ost outage    target unreachable; client RPCs time out and retry
//   mds overload  metadata service cost multiplier >= 1
//   rpc drop      per-delivery-attempt loss probability in [0, 1)
//   rpc stall     extra one-way delivery delay, seconds
//   noise spike   measurement-noise sigma multiplier >= 1
//
// Plans are built programmatically, parsed from a compact spec string
// (the CLI's --faults=SPEC), or pulled from the canned scenarios used by
// bench/fault_resilience.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace stellar::faults {

enum class FaultKind : std::uint8_t {
  OstDegrade,
  OstOutage,
  MdsOverload,
  RpcDrop,
  RpcStall,
  NoiseSpike,
};

[[nodiscard]] const char* faultKindName(FaultKind kind) noexcept;

/// Target value meaning "every OST" (and the only value meaningful for
/// the non-OST kinds).
inline constexpr std::int32_t kAllTargets = -1;

struct FaultEvent {
  FaultKind kind = FaultKind::OstDegrade;
  std::int32_t target = kAllTargets;  ///< OST index, or kAllTargets
  double begin = 0.0;                 ///< window [begin, end) in sim seconds
  double end = 0.0;
  double magnitude = 1.0;             ///< kind-specific, see taxonomy above

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

/// Thrown on malformed specs or out-of-range event parameters. Recoverable
/// by design: the CLI reports it and exits cleanly instead of aborting.
class FaultSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  /// Drives drop-window sampling, mixed with the run seed so distinct runs
  /// under one plan see independent (but replayable) loss patterns.
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Throws FaultSpecError when any event is malformed (inverted window,
  /// kind-specific magnitude out of range).
  void validate() const;

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// Parses a comma-separated event list, e.g.
///   "ost:2:degrade:0.3@10-40,rpc:drop:0.1@0-20,seed:7"
/// Grammar per element:
///   ost:<idx|*>:degrade:<mult>@<begin>-<end>
///   ost:<idx|*>:outage@<begin>-<end>
///   mds:overload:<mult>@<begin>-<end>
///   rpc:drop:<prob>@<begin>-<end>
///   rpc:stall:<seconds>@<begin>-<end>
///   noise:spike:<mult>@<begin>-<end>
///   seed:<n>
/// A bare scenario name (see scenarioNames) is also accepted. Throws
/// FaultSpecError with the offending element quoted.
[[nodiscard]] FaultPlan parseFaultSpec(std::string_view spec);

/// Canned scenarios used by bench/fault_resilience and the CLI.
[[nodiscard]] const std::vector<std::string>& scenarioNames();
[[nodiscard]] FaultPlan scenarioByName(std::string_view name);

}  // namespace stellar::faults

// Deterministic fault plans.
//
// A FaultPlan is pure data: a seed plus a list of fault windows over
// *simulated* time. The paper tunes a live Lustre cluster where OSTs slow
// down, RPCs stall, and measurements are noisy; a plan reproduces that
// weather deterministically — the same (job, config, seed, plan) replays
// bit-for-bit, which is what makes resilience testable (ISSUE 2).
//
// Event taxonomy (see DESIGN.md "Fault model"):
//   ost degrade   capacity multiplier in (0, 1]; service times scale 1/m
//   ost outage    target unreachable; client RPCs time out and retry
//   mds overload  metadata service cost multiplier >= 1
//   rpc drop      per-delivery-attempt loss probability in [0, 1)
//   rpc stall     extra one-way delivery delay, seconds
//   noise spike   measurement-noise sigma multiplier >= 1
//
// LLM agent-layer faults (ISSUE 7) share the same plan/grammar but live at
// the inference boundary (src/llm/LlmFaultModel), not the simulator: their
// windows count *model calls*, not sim seconds, and their magnitudes are
// per-call probabilities in [0, 1]. FaultInjector ignores them entirely, so
// a plan containing only LLM faults leaves simulator runs bit-identical to
// fault-free (the ML-FAULTFREE law keeps holding).
//
//   llm timeout            call exceeds its deadline; no response
//   llm rate-limit         backpressure rejection; retry after backoff
//   llm truncated          response cut off mid-action; unusable
//   llm malformed          tool-call JSON does not parse
//   llm hallucinated-knob  action names a parameter outside the spec
//   llm out-of-range       action value escapes the documented range
//   llm stale-analysis     analysis answer reflects an outdated run
//
// Plans are built programmatically, parsed from a compact spec string
// (the CLI's --faults=SPEC), or pulled from the canned scenarios used by
// bench/fault_resilience.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace stellar::faults {

enum class FaultKind : std::uint8_t {
  OstDegrade,
  OstOutage,
  MdsOverload,
  RpcDrop,
  RpcStall,
  NoiseSpike,
  // Agent-layer kinds; windows are call indices, magnitudes probabilities.
  LlmTimeout,
  LlmRateLimit,
  LlmTruncated,
  LlmMalformed,
  LlmHallucinatedKnob,
  LlmOutOfRange,
  LlmStaleAnalysis,
};

[[nodiscard]] const char* faultKindName(FaultKind kind) noexcept;

/// True for the agent-layer kinds handled by llm::LlmFaultModel (and
/// skipped by the simulator-side FaultInjector).
[[nodiscard]] bool isLlmFault(FaultKind kind) noexcept;

/// Target value meaning "every OST" (and the only value meaningful for
/// the non-OST kinds).
inline constexpr std::int32_t kAllTargets = -1;

struct FaultEvent {
  FaultKind kind = FaultKind::OstDegrade;
  std::int32_t target = kAllTargets;  ///< OST index, or kAllTargets
  double begin = 0.0;                 ///< window [begin, end) in sim seconds
                                      ///< (LLM kinds: in call indices)
  double end = 0.0;
  double magnitude = 1.0;             ///< kind-specific, see taxonomy above
  /// LLM kinds only: case-sensitive substring filter on the model name;
  /// empty matches every model. Ignored by the simulator-side kinds.
  std::string model;

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

/// Thrown on malformed specs or out-of-range event parameters. Recoverable
/// by design: the CLI reports it and exits cleanly instead of aborting.
class FaultSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultPlan {
  /// Drives drop-window sampling, mixed with the run seed so distinct runs
  /// under one plan see independent (but replayable) loss patterns.
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Throws FaultSpecError when any event is malformed (inverted window,
  /// kind-specific magnitude out of range).
  void validate() const;

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] bool operator==(const FaultPlan&) const = default;
};

/// Parses a comma-separated event list, e.g.
///   "ost:2:degrade:0.3@10-40,rpc:drop:0.1@0-20,seed:7"
/// Grammar per element:
///   ost:<idx|*>:degrade:<mult>@<begin>-<end>
///   ost:<idx|*>:outage@<begin>-<end>
///   mds:overload:<mult>@<begin>-<end>
///   rpc:drop:<prob>@<begin>-<end>
///   rpc:stall:<seconds>@<begin>-<end>
///   noise:spike:<mult>@<begin>-<end>
///   llm:<kind>:<prob>[:<model|*>]@<begin>-<end>
///     with <kind> one of timeout, ratelimit, truncate, malformed,
///     bad-knob, bad-value, stale; the window counts model calls and the
///     optional <model> is a substring filter on the model name
///   seed:<n>
/// A bare scenario name (see scenarioNames) is also accepted. Throws
/// FaultSpecError with the offending element quoted.
[[nodiscard]] FaultPlan parseFaultSpec(std::string_view spec);

/// Canned scenarios used by bench/fault_resilience and the CLI.
[[nodiscard]] const std::vector<std::string>& scenarioNames();
[[nodiscard]] FaultPlan scenarioByName(std::string_view name);

}  // namespace stellar::faults

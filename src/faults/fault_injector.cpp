#include "faults/fault_injector.hpp"

#include <algorithm>

namespace stellar::faults {

FaultInjector::FaultInjector(sim::SimEngine& engine, const FaultPlan& plan,
                             std::size_t ostCount, std::uint64_t runSeed)
    : engine_(engine),
      plan_(plan),
      rng_(util::mix64(plan.seed, runSeed)),
      ostSlowdown_(ostCount, 1.0),
      ostOutageDepth_(ostCount, 0) {}

void FaultInjector::arm() {
  for (const FaultEvent& event : plan_.events) {
    // Agent-layer faults live at the LLM inference boundary; scheduling
    // them here would perturb the event queue and break ML-FAULTFREE for
    // plans that only carry llm:* events.
    if (isLlmFault(event.kind)) {
      continue;
    }
    engine_.scheduleWindow(
        event.begin, event.end, [this, &event] { openEvent(event); },
        [this, &event] { closeEvent(event); });
  }
}

void FaultInjector::openEvent(const FaultEvent& event) {
  active_.push_back(&event);
  recompute(event.kind, event.target);
  ++windowsOpened_;
  if (counters_ != nullptr) {
    counters_->counter("faults.windows_opened").add(1.0);
  }
  edgeInstant(event, /*open=*/true);
}

void FaultInjector::closeEvent(const FaultEvent& event) {
  const auto it = std::find(active_.begin(), active_.end(), &event);
  if (it != active_.end()) {
    active_.erase(it);
  }
  recompute(event.kind, event.target);
  edgeInstant(event, /*open=*/false);
}

void FaultInjector::recompute(FaultKind kind, std::int32_t /*target*/) {
  // Edges are rare; rebuilding the affected dimension from the active list
  // keeps the cached values exact (no multiply/divide drift).
  switch (kind) {
    case FaultKind::OstDegrade:
      std::fill(ostSlowdown_.begin(), ostSlowdown_.end(), 1.0);
      for (const FaultEvent* e : active_) {
        if (e->kind != FaultKind::OstDegrade) {
          continue;
        }
        // magnitude is remaining capacity in (0, 1]; service scales 1/m.
        if (e->target == kAllTargets) {
          for (double& s : ostSlowdown_) {
            s /= e->magnitude;
          }
        } else if (static_cast<std::size_t>(e->target) < ostSlowdown_.size()) {
          ostSlowdown_[static_cast<std::size_t>(e->target)] /= e->magnitude;
        }
      }
      break;
    case FaultKind::OstOutage:
      std::fill(ostOutageDepth_.begin(), ostOutageDepth_.end(), 0u);
      for (const FaultEvent* e : active_) {
        if (e->kind != FaultKind::OstOutage) {
          continue;
        }
        if (e->target == kAllTargets) {
          for (std::uint32_t& d : ostOutageDepth_) {
            ++d;
          }
        } else if (static_cast<std::size_t>(e->target) < ostOutageDepth_.size()) {
          ++ostOutageDepth_[static_cast<std::size_t>(e->target)];
        }
      }
      break;
    case FaultKind::MdsOverload:
      mdsSlowdown_ = 1.0;
      for (const FaultEvent* e : active_) {
        if (e->kind == FaultKind::MdsOverload) {
          mdsSlowdown_ *= e->magnitude;
        }
      }
      break;
    case FaultKind::RpcDrop: {
      // Independent overlapping windows compose as survival products.
      double survive = 1.0;
      for (const FaultEvent* e : active_) {
        if (e->kind == FaultKind::RpcDrop) {
          survive *= 1.0 - e->magnitude;
        }
      }
      rpcDropProb_ = 1.0 - survive;
      break;
    }
    case FaultKind::RpcStall:
      rpcStallSeconds_ = 0.0;
      for (const FaultEvent* e : active_) {
        if (e->kind == FaultKind::RpcStall) {
          rpcStallSeconds_ += e->magnitude;
        }
      }
      break;
    case FaultKind::NoiseSpike:
      break;  // applied post-run via noiseMultiplierOver()
    case FaultKind::LlmTimeout:
    case FaultKind::LlmRateLimit:
    case FaultKind::LlmTruncated:
    case FaultKind::LlmMalformed:
    case FaultKind::LlmHallucinatedKnob:
    case FaultKind::LlmOutOfRange:
    case FaultKind::LlmStaleAnalysis:
      break;  // never armed; handled by llm::LlmFaultModel
  }
}

void FaultInjector::edgeInstant(const FaultEvent& event, bool open) {
  if (!obs::tracing(tracer_)) {
    return;
  }
  tracer_->instant("faults", open ? "window-open" : "window-close",
                   {{"kind", util::Json(faultKindName(event.kind))},
                    {"target", util::Json(static_cast<std::int64_t>(event.target))},
                    {"magnitude", util::Json(event.magnitude)},
                    {"sim_time", util::Json(engine_.now())}});
}

double FaultInjector::noiseMultiplierOver(double wallSeconds) const noexcept {
  if (wallSeconds <= 0.0) {
    return 1.0;
  }
  double factor = 1.0;
  for (const FaultEvent& event : plan_.events) {
    if (event.kind != FaultKind::NoiseSpike) {
      continue;
    }
    const double overlap =
        std::min(event.end, wallSeconds) - std::max(event.begin, 0.0);
    if (overlap > 0.0) {
      factor += (overlap / wallSeconds) * (event.magnitude - 1.0);
    }
  }
  return factor;
}

}  // namespace stellar::faults

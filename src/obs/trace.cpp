#include "obs/trace.hpp"

#include <chrono>

namespace stellar::obs {
namespace {

double steadyUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t currentTid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Per-thread span nesting level (for depth tagging and nesting tests).
std::uint32_t& depthCounter() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

}  // namespace

Tracer::Tracer(TracerOptions options)
    : enabled_(options.enabled),
      capacity_(options.capacity == 0 ? 1 : options.capacity),
      epochUs_(steadyUs()) {}

double Tracer::nowUs() const { return steadyUs() - epochUs_; }

Tracer::Span::Span(Tracer* tracer, const char* category, std::string name)
    : tracer_(tracer) {
  record_.phase = TraceRecord::Phase::Span;
  record_.category = category;
  record_.name = std::move(name);
  record_.startUs = tracer->nowUs();
  record_.tid = currentTid();
  record_.depth = depthCounter()++;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::arg(std::string key, util::Json value) {
  if (tracer_ != nullptr) {
    record_.args.push_back(TraceArg{std::move(key), std::move(value)});
  }
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) {
    return;
  }
  record_.durUs = tracer_->nowUs() - record_.startUs;
  --depthCounter();
  tracer_->commit(std::move(record_));
  tracer_ = nullptr;
}

Tracer::Span Tracer::span(const char* category, std::string name) {
  if (!enabled()) {
    return {};
  }
  return Span{this, category, std::move(name)};
}

void Tracer::instant(const char* category, std::string name, std::vector<TraceArg> args) {
  if (!enabled()) {
    return;
  }
  TraceRecord record;
  record.phase = TraceRecord::Phase::Instant;
  record.category = category;
  record.name = std::move(name);
  record.startUs = nowUs();
  record.tid = currentTid();
  record.depth = depthCounter();
  record.args = std::move(args);
  commit(std::move(record));
}

void Tracer::commit(TraceRecord&& record) {
  const std::lock_guard<std::mutex> lock{mutex_};
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // `head_` is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return total_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return total_ - ring_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock{mutex_};
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace stellar::obs

#include "obs/export.hpp"

#include "util/file.hpp"

namespace stellar::obs {
namespace {

util::Json argsObject(const std::vector<TraceArg>& args) {
  util::Json obj = util::Json::makeObject();
  for (const TraceArg& arg : args) {
    obj.set(arg.key, arg.value);
  }
  return obj;
}

util::Json recordJson(const TraceRecord& record) {
  util::Json obj = util::Json::makeObject();
  obj.set("type", record.phase == TraceRecord::Phase::Span ? "span" : "instant");
  obj.set("cat", record.category);
  obj.set("name", record.name);
  obj.set("ts", record.startUs);
  obj.set("dur", record.durUs);
  obj.set("tid", static_cast<std::int64_t>(record.tid));
  obj.set("depth", static_cast<std::int64_t>(record.depth));
  if (!record.args.empty()) {
    obj.set("args", argsObject(record.args));
  }
  return obj;
}

}  // namespace

std::string toJsonl(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const TraceRecord& record : records) {
    out += recordJson(record).dump();
    out += '\n';
  }
  return out;
}

std::vector<TraceRecord> fromJsonl(const std::string& text) {
  std::vector<TraceRecord> records;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string_view line{text.data() + pos, eol - pos};
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    util::Json obj;
    try {
      obj = util::Json::parse(line);
    } catch (const util::JsonError& e) {
      throw util::JsonError("jsonl record " + std::to_string(records.size() + 1) +
                            ": " + e.what());
    }
    TraceRecord record;
    record.phase = obj.getString("type") == "instant" ? TraceRecord::Phase::Instant
                                                      : TraceRecord::Phase::Span;
    record.category = obj.getString("cat");
    record.name = obj.getString("name");
    record.startUs = obj.getNumber("ts");
    record.durUs = obj.getNumber("dur");
    record.tid = static_cast<std::uint32_t>(obj.getNumber("tid"));
    record.depth = static_cast<std::uint32_t>(obj.getNumber("depth"));
    if (obj.contains("args")) {
      for (const auto& [key, value] : obj.at("args").asObject()) {
        record.args.push_back(TraceArg{key, value});
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

util::Json toChromeTrace(const std::vector<TraceRecord>& records) {
  util::Json events = util::Json::makeArray();
  for (const TraceRecord& record : records) {
    util::Json event = util::Json::makeObject();
    event.set("name", record.name);
    event.set("cat", record.category);
    event.set("pid", 1);
    event.set("tid", static_cast<std::int64_t>(record.tid));
    event.set("ts", record.startUs);
    if (record.phase == TraceRecord::Phase::Span) {
      event.set("ph", "X");
      event.set("dur", record.durUs);
    } else {
      event.set("ph", "i");
      event.set("s", "t");  // thread-scoped instant
    }
    if (!record.args.empty()) {
      event.set("args", argsObject(record.args));
    }
    events.push(std::move(event));
  }
  util::Json root = util::Json::makeObject();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  return root;
}

void writeJsonl(const Tracer& tracer, const std::string& path) {
  util::writeFile(path, toJsonl(tracer.snapshot()));
}

void writeChromeTrace(const Tracer& tracer, const std::string& path) {
  util::writeFile(path, toChromeTrace(tracer.snapshot()).dump(1));
}

void writeCountersJson(const CounterRegistry& registry, const std::string& path) {
  util::writeFile(path, registry.toJson().dump(2));
}

}  // namespace stellar::obs

#include "obs/counters.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace stellar::obs {
namespace {

Labels sortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

/// Identity string: name + sorted labels, with separators that cannot
/// appear in reasonable metric names.
std::string identity(std::string_view name, const Labels& sorted) {
  std::string id{name};
  for (const auto& [k, v] : sorted) {
    id += '\x1f';
    id += k;
    id += '\x1e';
    id += v;
  }
  return id;
}

const char* kindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::Counter: return "counter";
    case MetricSample::Kind::Gauge: return "gauge";
    case MetricSample::Kind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  data_.bounds = std::move(bounds);
  data_.buckets.assign(data_.bounds.size() + 1, 0);
}

void Histogram::observe(double value) {
  const util::MutexLock lock{mutex_};
  const auto it = std::lower_bound(data_.bounds.begin(), data_.bounds.end(), value);
  ++data_.buckets[static_cast<std::size_t>(it - data_.bounds.begin())];
  if (data_.count == 0 || value < data_.minValue) {
    data_.minValue = value;
  }
  if (data_.count == 0 || value > data_.maxValue) {
    data_.maxValue = value;
  }
  ++data_.count;
  data_.sum += value;
}

HistogramData Histogram::data() const {
  const util::MutexLock lock{mutex_};
  return data_;
}

void Histogram::merge(const HistogramData& other) {
  if (other.count == 0) {
    return;
  }
  const util::MutexLock lock{mutex_};
  if (data_.bounds == other.bounds) {
    for (std::size_t i = 0; i < data_.buckets.size(); ++i) {
      data_.buckets[i] += other.buckets[i];
    }
  } else {
    // Mismatched bounds: replay the mean (lossy but safe fallback).
    const auto it = std::lower_bound(data_.bounds.begin(), data_.bounds.end(), other.mean());
    data_.buckets[static_cast<std::size_t>(it - data_.bounds.begin())] += other.count;
  }
  if (data_.count == 0 || other.minValue < data_.minValue) {
    data_.minValue = other.minValue;
  }
  if (data_.count == 0 || other.maxValue > data_.maxValue) {
    data_.maxValue = other.maxValue;
  }
  data_.count += other.count;
  data_.sum += other.sum;
}

void Histogram::reset() {
  const util::MutexLock lock{mutex_};
  std::fill(data_.buckets.begin(), data_.buckets.end(), 0);
  data_.count = 0;
  data_.sum = 0.0;
  data_.minValue = 0.0;
  data_.maxValue = 0.0;
}

std::vector<double> Histogram::defaultBounds() {
  // Geometric x4 ladder spanning 1e-6 .. ~4e3: fits seconds-scale service
  // times and small counts alike without per-metric tuning.
  std::vector<double> bounds;
  for (double b = 1e-6; b < 5e3; b *= 4.0) {
    bounds.push_back(b);
  }
  return bounds;
}

CounterRegistry::Cell& CounterRegistry::findOrCreate(std::string_view name,
                                                     const Labels& labels,
                                                     MetricSample::Kind kind,
                                                     std::vector<double>* bounds) {
  const Labels sorted = sortedLabels(labels);
  const std::string id = identity(name, sorted);
  const util::MutexLock lock{mutex_};
  const auto it = std::find_if(index_.begin(), index_.end(),
                               [&](const auto& e) { return e.first == id; });
  if (it != index_.end()) {
    Cell& cell = *cells_[it->second];
    if (cell.kind != kind) {
      throw std::logic_error("metric '" + std::string{name} + "' re-registered as " +
                             kindName(kind) + " (was " + kindName(cell.kind) + ")");
    }
    return cell;
  }
  auto cell = std::make_unique<Cell>();
  cell->key = MetricKey{std::string{name}, sorted};
  cell->kind = kind;
  switch (kind) {
    case MetricSample::Kind::Counter:
      cell->counter = std::make_unique<Counter>();
      break;
    case MetricSample::Kind::Gauge:
      cell->gauge = std::make_unique<Gauge>();
      break;
    case MetricSample::Kind::Histogram:
      cell->histogram = std::make_unique<Histogram>(
          bounds != nullptr ? std::move(*bounds) : Histogram::defaultBounds());
      break;
  }
  cells_.push_back(std::move(cell));
  index_.emplace_back(id, cells_.size() - 1);
  return *cells_.back();
}

Counter& CounterRegistry::counter(std::string_view name, const Labels& labels) {
  return *findOrCreate(name, labels, MetricSample::Kind::Counter, nullptr).counter;
}

Gauge& CounterRegistry::gauge(std::string_view name, const Labels& labels) {
  return *findOrCreate(name, labels, MetricSample::Kind::Gauge, nullptr).gauge;
}

Histogram& CounterRegistry::histogram(std::string_view name, const Labels& labels,
                                      std::vector<double> bounds) {
  return *findOrCreate(name, labels, MetricSample::Kind::Histogram, &bounds).histogram;
}

std::vector<MetricSample> CounterRegistry::snapshot() const {
  std::vector<MetricSample> samples;
  const util::MutexLock lock{mutex_};
  samples.reserve(cells_.size());
  for (const auto& cell : cells_) {
    MetricSample sample;
    sample.key = cell->key;
    sample.kind = cell->kind;
    switch (cell->kind) {
      case MetricSample::Kind::Counter:
        sample.value = cell->counter->value();
        break;
      case MetricSample::Kind::Gauge:
        sample.value = cell->gauge->value();
        break;
      case MetricSample::Kind::Histogram:
        sample.histogram = cell->histogram->data();
        sample.value = sample.histogram.mean();
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const MetricSample& sample : other.snapshot()) {
    switch (sample.kind) {
      case MetricSample::Kind::Counter:
        counter(sample.key.name, sample.key.labels).add(sample.value);
        break;
      case MetricSample::Kind::Gauge:
        gauge(sample.key.name, sample.key.labels).setMax(sample.value);
        break;
      case MetricSample::Kind::Histogram: {
        std::vector<double> bounds = sample.histogram.bounds;
        histogram(sample.key.name, sample.key.labels, std::move(bounds))
            .merge(sample.histogram);
        break;
      }
    }
  }
}

void CounterRegistry::reset() {
  const util::MutexLock lock{mutex_};
  for (const auto& cell : cells_) {
    switch (cell->kind) {
      case MetricSample::Kind::Counter: cell->counter->reset(); break;
      case MetricSample::Kind::Gauge: cell->gauge->reset(); break;
      case MetricSample::Kind::Histogram: cell->histogram->reset(); break;
    }
  }
}

std::size_t CounterRegistry::size() const {
  const util::MutexLock lock{mutex_};
  return cells_.size();
}

util::Json CounterRegistry::toJson() const {
  util::Json metrics = util::Json::makeArray();
  for (const MetricSample& sample : snapshot()) {
    util::Json entry = util::Json::makeObject();
    entry.set("name", sample.key.name);
    if (!sample.key.labels.empty()) {
      util::Json labels = util::Json::makeObject();
      for (const auto& [k, v] : sample.key.labels) {
        labels.set(k, v);
      }
      entry.set("labels", std::move(labels));
    }
    entry.set("kind", kindName(sample.kind));
    if (sample.kind == MetricSample::Kind::Histogram) {
      util::Json hist = util::Json::makeObject();
      hist.set("count", static_cast<std::int64_t>(sample.histogram.count));
      hist.set("sum", sample.histogram.sum);
      hist.set("min", sample.histogram.minValue);
      hist.set("max", sample.histogram.maxValue);
      util::Json bounds = util::Json::makeArray();
      for (double b : sample.histogram.bounds) {
        bounds.push(b);
      }
      hist.set("bounds", std::move(bounds));
      util::Json buckets = util::Json::makeArray();
      for (std::uint64_t b : sample.histogram.buckets) {
        buckets.push(static_cast<std::int64_t>(b));
      }
      hist.set("buckets", std::move(buckets));
      entry.set("histogram", std::move(hist));
    } else {
      entry.set("value", sample.value);
    }
    metrics.push(std::move(entry));
  }
  util::Json root = util::Json::makeObject();
  root.set("metrics", std::move(metrics));
  return root;
}

std::string CounterRegistry::renderTable() const {
  std::string out;
  for (const MetricSample& sample : snapshot()) {
    std::string name = sample.key.name;
    if (!sample.key.labels.empty()) {
      name += '{';
      for (std::size_t i = 0; i < sample.key.labels.size(); ++i) {
        if (i > 0) {
          name += ',';
        }
        name += sample.key.labels[i].first + '=' + sample.key.labels[i].second;
      }
      name += '}';
    }
    char line[192];
    if (sample.kind == MetricSample::Kind::Histogram) {
      std::snprintf(line, sizeof(line), "%-48s n=%llu mean=%.6g min=%.6g max=%.6g\n",
                    name.c_str(), static_cast<unsigned long long>(sample.histogram.count),
                    sample.histogram.mean(), sample.histogram.minValue,
                    sample.histogram.maxValue);
    } else {
      std::snprintf(line, sizeof(line), "%-48s %.6g\n", name.c_str(), sample.value);
    }
    out += line;
  }
  return out;
}

}  // namespace stellar::obs

// Trace/metric exporters.
//
//  - JSONL: one JSON object per line, lossless (fromJsonl round-trips);
//    the archival format for trace diffing between PRs.
//  - Chrome trace ("chrome://tracing" / Perfetto JSON): spans become
//    complete ("X") events, instants become "i" events; open the file
//    directly in the trace viewer.
//  - Counter registry: the toJson() document written via util::file.
#pragma once

#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace stellar::obs {

/// Lossless line-per-record serialization.
[[nodiscard]] std::string toJsonl(const std::vector<TraceRecord>& records);

/// Parses toJsonl output (blank lines ignored). Throws util::JsonError on
/// malformed lines.
[[nodiscard]] std::vector<TraceRecord> fromJsonl(const std::string& text);

/// {"traceEvents":[...], "displayTimeUnit":"ms"} document.
[[nodiscard]] util::Json toChromeTrace(const std::vector<TraceRecord>& records);

/// Convenience file writers (util::file; throw std::runtime_error on I/O).
void writeJsonl(const Tracer& tracer, const std::string& path);
void writeChromeTrace(const Tracer& tracer, const std::string& path);
void writeCountersJson(const CounterRegistry& registry, const std::string& path);

}  // namespace stellar::obs

// The single registry of metric names (stellar-lint RES-COUNTER-NAME).
//
// Every counter/gauge/histogram name used anywhere in src/ must be listed
// here; stellar-lint cross-checks each registrar call site's string
// literal against this file and fails the build otherwise. That turns the
// two failure modes we have already hit — a counter flushed under one name
// and read back under another (the pfs.rpc.* / rpc.* drift fixed in PR 8),
// and dashboards silently reading a name nobody emits — into lint errors.
//
// Keep the list sorted. Adding a metric = add the emit site and one line
// here; the lint self-test (tests/lint) fails if either half is missing.
#pragma once

#include <string_view>

namespace stellar::obs {

inline constexpr std::string_view kMetricNames[] = {
    "agent.llm.breaker_short_circuits",
    "agent.llm.breaker_trips",
    "agent.llm.clamped_values",
    "agent.llm.failed_attempts",
    "agent.llm.rejected_actions",
    "agent.llm.retries",
    "agent.llm.stale_analyses",
    "agent.llm.timeouts",
    "core.extraction.cache_hit",
    "core.extraction.cache_miss",
    "core.resilience.escalations",
    "core.tuning.aborted_runs",
    "core.tuning.attempts",
    "core.tuning.best_speedup",
    "core.tuning.measurements_retried",
    "core.tuning.measurements_skipped",
    "core.tuning.runs",
    "core.warm_start.miss",
    "core.warm_start.outcomes",
    "core.warm_start.recalled",
    "exp.campaign.cells_executed",
    "exp.campaign.cells_failed",
    "exp.campaign.cells_skipped",
    "exp.campaign.committed",
    "exp.store.appends",
    "exp.store.compactions",
    "exp.store.confirmed",
    "exp.store.corrupt_lines",
    "exp.store.evicted",
    "exp.store.penalized",
    "exp.store.recall_hits",
    "exp.store.recall_misses",
    "exp.store.records_loaded",
    "exp.store.shards_absorbed",
    "faults.windows_opened",
    "harness.failed_runs",
    "harness.unstable_measures",
    "pfs.cache.page_hit_bytes",
    "pfs.cache.readahead_hit_bytes",
    "pfs.cache.readahead_miss_bytes",
    "pfs.lock.extent_conflicts",
    "pfs.lock.hits",
    "pfs.lock.misses",
    "pfs.lock.wait_seconds",
    "pfs.lock.waits",
    "pfs.mds.busy_seconds",
    "pfs.mds.ops",
    "pfs.meta.statahead_served",
    "pfs.ost.peak_queue",
    "pfs.ost.seek_seconds",
    "pfs.ost.seeks",
    "pfs.ost.transfer_seconds",
    "pfs.reada.consumed_bytes",
    "pfs.reada.discarded_bytes",
    "pfs.reada.prefetched_bytes",
    "pfs.reada.resident_bytes",
    "pfs.reada.windows_grown",
    "pfs.reada.windows_opened",
    "pfs.reada.windows_reset",
    "pfs.rpc.data",
    "pfs.rpc.gave_up",
    "pfs.rpc.meta",
    "pfs.rpc.retries",
    "pfs.rpc.timeouts",
    "pfs.sim.config_rejected",
    "service.commits",
    "service.dispatch.fresh_runs",
    "service.queue.peak_depth",
    "service.sessions.coalesced",
    "service.sessions.completed",
    "service.sessions.failed",
    "service.sessions.interrupted",
    "service.sessions.rejected",
    "service.sessions.replayed",
    "service.sessions.submitted",
    "service.store.absorbed",
    "service.store.shard_appends",
    "service.store.snapshot_swaps",
    "sim.drains",
    "sim.events_dispatched",
};

}  // namespace stellar::obs

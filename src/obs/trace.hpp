// Low-overhead tracer: scoped spans and typed instant events collected in
// a bounded ring buffer, exportable as JSONL or Chrome trace (export.hpp).
//
// Cost model:
//  - no tracer attached      -> a null-pointer check at each site
//  - attached but disabled   -> one relaxed atomic load per site
//  - enabled                 -> record assembly + one mutex-guarded push
//    (the harness runs repeats on a thread pool, so commits synchronize)
//
// Spans carry a static category string ("sim", "rpc", "tuning", "harness")
// that becomes the Chrome trace `cat` field; args are typed util::Json
// values. The RAII Span accumulates locally and commits on end()/dtor, so
// an in-flight span costs nothing but stack space.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace stellar::obs {

/// One typed key/value attached to a span or instant event.
struct TraceArg {
  std::string key;
  util::Json value;
};

/// A finished span or instant event as stored in the ring.
struct TraceRecord {
  enum class Phase : std::uint8_t { Span, Instant };
  Phase phase = Phase::Span;
  std::string category;  ///< short, from a fixed vocabulary ("sim", "rpc", ...)
  std::string name;
  double startUs = 0.0;  ///< wall microseconds since tracer construction
  double durUs = 0.0;    ///< 0 for instants
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  ///< span nesting level on the emitting thread
  std::vector<TraceArg> args;
};

struct TracerOptions {
  bool enabled = true;
  std::size_t capacity = 1 << 16;  ///< ring slots; oldest records drop first
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void setEnabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// RAII span: records [construction, end()] while the owning tracer is
  /// enabled. A default-constructed (or disabled-at-begin) span is inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

    /// Attaches a typed argument (no-op when inert).
    void arg(std::string key, util::Json value);

    /// Commits the record; idempotent.
    void end();

   private:
    friend class Tracer;
    Span(Tracer* tracer, const char* category, std::string name);

    Tracer* tracer_ = nullptr;
    TraceRecord record_;
  };

  /// Starts a span; inert when the tracer is disabled.
  [[nodiscard]] Span span(const char* category, std::string name);

  /// Records a zero-duration event.
  void instant(const char* category, std::string name, std::vector<TraceArg> args = {});

  /// Wall-clock microseconds since tracer construction.
  [[nodiscard]] double nowUs() const;

  /// Chronologically ordered copy of the ring contents.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  [[nodiscard]] std::uint64_t recorded() const;  ///< total committed
  [[nodiscard]] std::uint64_t dropped() const;   ///< overwritten by the ring
  void clear();

 private:
  void commit(TraceRecord&& record);

  std::atomic<bool> enabled_;
  std::size_t capacity_;
  double epochUs_;  ///< steady-clock microseconds at construction

  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< next overwrite slot once full
  std::uint64_t total_ = 0;
};

/// Null-safe helpers: the recommended call form throughout the codebase.
/// `tracer` may be nullptr (observability not wired up at all).
///
/// Hot paths should branch on tracing() BEFORE building names/args —
/// instant()/beginSpan() check too, but by then the caller has already
/// paid for the argument vector.
[[nodiscard]] inline bool tracing(const Tracer* tracer) noexcept {
  return tracer != nullptr && tracer->enabled();
}

[[nodiscard]] inline Tracer::Span beginSpan(Tracer* tracer, const char* category,
                                            std::string name) {
  if (tracer == nullptr || !tracer->enabled()) {
    return {};
  }
  return tracer->span(category, std::move(name));
}

inline void instant(Tracer* tracer, const char* category, std::string name,
                    std::vector<TraceArg> args = {}) {
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  tracer->instant(category, std::move(name), std::move(args));
}

}  // namespace stellar::obs

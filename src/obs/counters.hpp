// Hierarchical metric registry: counters, gauges, and histograms with
// optional labels, addressed by dotted names ("pfs.rpc.data"). The
// registry is the cross-run aggregation point of the observability layer:
// every PfsSimulator::run flushes its RunCounters here, the tuning engine
// adds cache-hit statistics, and the CLI renders/export the snapshot.
//
// Concurrency: the experiment harness runs repeats on a thread pool, so
// find-or-create is mutex-guarded and the metric cells themselves are
// atomic. Returned references stay valid for the registry's lifetime
// (cells are heap-allocated and never moved).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace stellar::obs {

/// Label set attached to a metric instance, e.g. {{"ost", "3"}}.
/// Order-insensitive: labels are sorted by key when forming the identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing sum (counts or totals such as seconds/bytes).
class Counter {
 public:
  void add(double delta = 1.0) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written instantaneous value (queue depth, rule-set size).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Retains the larger of the current and observed value.
  void setMax(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated histogram state (also the merge/export carrier).
struct HistogramData {
  std::vector<double> bounds;           ///< upper bucket bounds, ascending
  std::vector<std::uint64_t> buckets;   ///< bounds.size() + 1 (last = +inf)
  std::uint64_t count = 0;
  double sum = 0.0;
  double minValue = 0.0;
  double maxValue = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram; observe() is mutex-guarded (histograms sit off
/// the per-event hot path — they are fed at flush points).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  [[nodiscard]] HistogramData data() const;
  /// Adds another histogram's aggregate: bucket-wise when bounds match,
  /// otherwise the other side's mean is replayed `count` times.
  void merge(const HistogramData& other);
  void reset();

  /// Default bounds: powers of ~4 covering microseconds..hours when the
  /// unit is seconds, or 1..~10^9 for counts/bytes.
  [[nodiscard]] static std::vector<double> defaultBounds();

 private:
  mutable util::Mutex mutex_;
  HistogramData data_ STELLAR_GUARDED_BY(mutex_);
};

/// Identity of one metric instance inside the registry.
struct MetricKey {
  std::string name;
  Labels labels;  ///< sorted by key
};

/// A point-in-time copy of one metric, used for export and inspection.
struct MetricSample {
  enum class Kind { Counter, Gauge, Histogram };
  MetricKey key;
  Kind kind = Kind::Counter;
  double value = 0.0;       ///< counter/gauge value; histogram mean
  HistogramData histogram;  ///< populated for histograms only
};

class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Find-or-create; the reference stays valid for the registry lifetime.
  /// Re-registering a name with a different metric kind throws.
  [[nodiscard]] Counter& counter(std::string_view name, const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, const Labels& labels = {});
  [[nodiscard]] Histogram& histogram(std::string_view name, const Labels& labels = {},
                                     std::vector<double> bounds = Histogram::defaultBounds());

  /// Registration-ordered copy of every metric (deterministic export).
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Adds every metric of `other` into this registry: counters add,
  /// gauges keep the maximum, histograms merge bucket-wise (bounds of the
  /// first registration win when they differ).
  void merge(const CounterRegistry& other);

  /// Zeroes all values; registrations (names, labels, bounds) survive.
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// {"metrics":[{name, labels, kind, value|histogram}...]}.
  [[nodiscard]] util::Json toJson() const;

  /// Aligned human-readable listing for the CLI's --metrics flag.
  [[nodiscard]] std::string renderTable() const;

 private:
  struct Cell {
    MetricKey key;
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  [[nodiscard]] Cell& findOrCreate(std::string_view name, const Labels& labels,
                                   MetricSample::Kind kind, std::vector<double>* bounds);

  mutable util::Mutex mutex_;
  // registration order
  std::vector<std::unique_ptr<Cell>> cells_ STELLAR_GUARDED_BY(mutex_);
  // identity -> cell
  std::vector<std::pair<std::string, std::size_t>> index_ STELLAR_GUARDED_BY(mutex_);
};

}  // namespace stellar::obs

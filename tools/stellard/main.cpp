// stellard — driver for the in-process tuning-session service core
// (src/service). There is deliberately NO network listener: the service
// "protocol" is the TuningService method surface, and this binary feeds it
// a batch of submissions, which keeps the daemon core deterministic and
// testable (DESIGN.md §9). A socket front end would parse requests into
// exactly the SubmitOptions documents accepted here.
//
//   stellard --store FILE [options] < requests.jsonl
//   stellard --store FILE --request '{"tenant":"alice","workload":"ior-easy"}'
//
// Input: one JSON object per line (stdin, or repeated --request flags):
//   {"tenant": "alice", "workload": "ior-easy", "seed": 1,
//    "model": "claude-3.7-sonnet", "faults": "", "scale": 0.05,
//    "ranks": 50, "warm_start": true}
// Missing fields take the SubmitOptions defaults shown above.
//
// Output: one JSON line per session (submission order) on stdout; a final
// summary document on stderr. Exit 0 when every session completed, 3 when
// any was rejected/failed/interrupted (partial service), 2 on usage errors.
//
// Re-running the same batch against the same --store resumes: completed
// cells replay from `<store>.manifest` byte-identically, and `--commit`
// absorbs the per-tenant experience shards so the *next* batch warm-starts
// from fleet history.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "service/service.hpp"
#include "util/file.hpp"
#include "util/strings.hpp"

namespace {

using namespace stellar;

struct DaemonOptions {
  std::string storePath;
  std::string manifestPath;
  std::size_t workers = 4;
  std::size_t maxOutstanding = 256;
  std::size_t maxFresh = 0;
  double quantum = 1.0;
  bool commit = false;
  bool metrics = false;
  std::vector<std::string> requests;  ///< inline --request bodies
  /// --tenant-weight alice=2[:maxRunning[:maxOutstanding]] overrides.
  std::map<std::string, service::TenantPolicy> tenants;
};

[[noreturn]] void usage(int code = 2) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: stellard --store FILE [options] [< requests.jsonl]\n"
               "  --store FILE          fleet experience store (manifest and\n"
               "                        session journals live next to it)\n"
               "  --manifest FILE       resume manifest (default <store>.manifest)\n"
               "  --workers N           worker threads / concurrent sessions (default 4)\n"
               "  --max-outstanding N   global admission bound (default 256)\n"
               "  --max-fresh N         interrupt after N fresh cells (resume testing)\n"
               "  --quantum Q           deficit-round-robin credit per visit\n"
               "  --tenant-weight T=W[:RUN[:OUT]]  per-tenant weight, running cap,\n"
               "                        outstanding bound (repeatable)\n"
               "  --request JSON        submit this request (repeatable; with no\n"
               "                        --request flags, requests are read from stdin)\n"
               "  --commit              absorb experience shards after the batch\n"
               "  --metrics             print the counter registry to stderr\n"
               "  --help, -h            print this help and exit 0\n");
  std::exit(code);
}

DaemonOptions parseArgs(const std::vector<std::string>& args) {
  DaemonOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string arg = args[i];
    std::string inlineValue;
    bool hasInlineValue = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inlineValue = arg.substr(eq + 1);
        arg.erase(eq);
        hasInlineValue = true;
      }
    }
    const auto value = [&]() -> std::string {
      if (hasInlineValue) {
        return inlineValue;
      }
      if (i + 1 >= args.size()) {
        usage();
      }
      return args[++i];
    };
    if (arg == "--store") {
      opts.storePath = value();
    } else if (arg == "--manifest") {
      opts.manifestPath = value();
    } else if (arg == "--workers") {
      opts.workers = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--max-outstanding") {
      opts.maxOutstanding = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--max-fresh") {
      opts.maxFresh = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--quantum") {
      opts.quantum = std::atof(value().c_str());
    } else if (arg == "--tenant-weight") {
      // T=W[:RUN[:OUT]]
      const std::string spec = value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --tenant-weight (want T=W[:RUN[:OUT]]): %s\n",
                     spec.c_str());
        usage();
      }
      service::TenantPolicy policy;
      const std::vector<std::string> parts =
          stellar::util::split(spec.substr(eq + 1), ':');
      policy.weight = std::atof(parts[0].c_str());
      if (parts.size() > 1) {
        policy.maxRunning = std::strtoull(parts[1].c_str(), nullptr, 10);
      }
      if (parts.size() > 2) {
        policy.maxOutstanding = std::strtoull(parts[2].c_str(), nullptr, 10);
      }
      opts.tenants[spec.substr(0, eq)] = policy;
    } else if (arg == "--request") {
      opts.requests.push_back(value());
    } else if (arg == "--commit") {
      opts.commit = true;
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
    }
  }
  return opts;
}

std::uint64_t monotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  const DaemonOptions opts = parseArgs({argv + 1, argv + argc});
  std::vector<std::string> lines = opts.requests;
  if (lines.empty()) {
    std::string line;
    for (int c = std::getchar(); c != EOF; c = std::getchar()) {
      if (c == '\n') {
        lines.push_back(line);
        line.clear();
      } else {
        line.push_back(static_cast<char>(c));
      }
    }
    if (!line.empty()) {
      lines.push_back(line);
    }
  }

  obs::CounterRegistry registry;
  service::ServiceOptions serviceOpts;
  serviceOpts.storePath = opts.storePath;
  serviceOpts.manifestPath = opts.manifestPath;
  serviceOpts.workers = opts.workers;
  serviceOpts.maxOutstanding = opts.maxOutstanding;
  serviceOpts.maxFreshSessions = opts.maxFresh;
  serviceOpts.quantum = opts.quantum;
  serviceOpts.tenants = opts.tenants;
  serviceOpts.counters = &registry;
  serviceOpts.store.counters = &registry;
  serviceOpts.clock = &monotonicNanos;

  try {
    service::TuningService daemon{serviceOpts};
    std::vector<service::SessionId> accepted;
    std::size_t rejected = 0;
    std::size_t lineNo = 0;
    for (const std::string& raw : lines) {
      ++lineNo;
      if (stellar::util::trim(raw).empty()) {
        continue;
      }
      service::SubmitOptions request;
      try {
        request = service::SubmitOptions::fromJson(util::Json::parse(raw));
      } catch (const util::JsonError& e) {
        std::fprintf(stderr, "request %zu: bad JSON (%s)\n", lineNo, e.what());
        ++rejected;
        continue;
      }
      const service::SubmitResult result = daemon.submit(request);
      if (result.accepted()) {
        accepted.push_back(*result.id);
      } else {
        ++rejected;
        util::Json doc = util::Json::makeObject();
        doc.set("state", "rejected");
        doc.set("reason", service::rejectReasonName(result.rejection->reason));
        doc.set("detail", result.rejection->detail);
        std::printf("%s\n", doc.dump().c_str());
      }
    }

    std::size_t failed = 0;
    for (const service::SessionId id : accepted) {
      const service::SessionResult session = daemon.wait(id);
      if (session.state != service::SessionState::Completed) {
        ++failed;
      }
      std::printf("%s\n", session.toJson().dump().c_str());
    }
    std::size_t absorbed = 0;
    if (opts.commit) {
      absorbed = daemon.commit();
    }

    const service::ServiceStats stats = daemon.stats();
    std::fprintf(stderr,
                 "stellard: %zu submitted, %zu coalesced, %zu completed, "
                 "%zu failed, %zu rejected, %zu replayed, %zu interrupted, "
                 "%zu fresh runs, %zu absorbed\n",
                 stats.submitted, stats.coalesced, stats.completed, stats.failed,
                 stats.rejected, stats.replayed, stats.interrupted,
                 stats.freshRuns, absorbed);
    if (opts.metrics) {
      std::fprintf(stderr, "\n--- metrics ---\n%s", registry.renderTable().c_str());
    }
    return (failed == 0 && rejected == 0) ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stellard: %s\n", e.what());
    return 1;
  }
}

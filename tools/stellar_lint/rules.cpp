// Rule implementations for stellar-lint. Each rule is a token-level
// scanner; see lint.hpp for the catalogue and DESIGN.md §7 for rationale.

#include <algorithm>
#include <cctype>
#include <sstream>

#include "lint.hpp"

namespace stellar::lint {
namespace {

std::string trimCopy(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string lowerCopy(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string snippetAt(const SourceFile& file, int line) {
  if (line >= 1 && static_cast<std::size_t>(line) <= file.lines.size()) {
    return trimCopy(file.lines[static_cast<std::size_t>(line) - 1]);
  }
  return {};
}

Finding makeFinding(const SourceFile& file, int line, std::string rule,
                    std::string message) {
  Finding f;
  f.file = file.path;
  f.line = line;
  f.rule = std::move(rule);
  f.message = std::move(message);
  f.snippet = snippetAt(file, line);
  return f;
}

bool isPunct(const Token& t, const char* text) {
  return t.kind == Token::Kind::Punct && t.text == text;
}

bool isIdent(const Token& t, const char* text) {
  return t.kind == Token::Kind::Identifier && t.text == text;
}

/// Index of the token matching the opener at `open` (which must be "(" /
/// "{" / "["), or tokens.size() when unbalanced.
std::size_t matchingClose(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : (o == "{" ? "}" : "]");
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (isPunct(toks[i], o.c_str())) ++depth;
    else if (isPunct(toks[i], close) && --depth == 0) return i;
  }
  return toks.size();
}

// ---- declaration harvesting ------------------------------------------------

/// Variable/member names declared with an unordered associative container
/// type: `std::unordered_map<K, V> name;` and friends.
void collectUnorderedNames(const SourceFile& file, std::set<std::string>& out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier) continue;
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set" && t != "unordered_multimap" &&
        t != "unordered_multiset") {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || !isPunct(toks[j], "<")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (isPunct(toks[j], "<")) ++depth;
      else if (isPunct(toks[j], ">") && --depth == 0) { ++j; break; }
      else if (isPunct(toks[j], ";")) break;  // malformed / fwd-decl — bail
    }
    // Skip ref/pointer/cv noise between the type and the declared name.
    while (j < toks.size() &&
           (isPunct(toks[j], "&") || isPunct(toks[j], "*") || isIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::Identifier) {
      out.insert(toks[j].text);
    }
  }
}

/// Names declared with a raw floating-point type (`double x`, `float y`).
void collectFloatNames(const SourceFile& file, std::set<std::string>& out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks[i], "double") && !isIdent(toks[i], "float")) continue;
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (isPunct(toks[j], "&") || isPunct(toks[j], "*") || isIdent(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::Identifier) {
      out.insert(toks[j].text);
    }
  }
}

// ---- determinism rules -----------------------------------------------------

void checkRandom(const SourceFile& file, std::vector<Finding>& out) {
  static const std::set<std::string> kTypes = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "random_shuffle"};
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier) continue;
    const std::string& t = toks[i].text;
    if (kTypes.count(t) != 0U) {
      out.push_back(makeFinding(file, toks[i].line, "DET-RANDOM",
                                "`" + t + "` is nondeterministic across platforms; use "
                                "util::rng (xoshiro256**) seeded from EngineOptions"));
      continue;
    }
    if ((t == "rand" || t == "srand") && i + 1 < toks.size() && isPunct(toks[i + 1], "(") &&
        (i == 0 || (!isPunct(toks[i - 1], ".") && !isPunct(toks[i - 1], "->")))) {
      out.push_back(makeFinding(file, toks[i].line, "DET-RANDOM",
                                "`" + t + "()` draws from hidden global state; use "
                                "util::rng seeded from EngineOptions"));
    }
  }
}

void checkClock(const SourceFile& file, std::vector<Finding>& out) {
  static const std::set<std::string> kClocks = {
      "system_clock",  "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",             "gmtime"};
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier) continue;
    const std::string& t = toks[i].text;
    if (kClocks.count(t) != 0U) {
      out.push_back(makeFinding(file, toks[i].line, "DET-CLOCK",
                                "wall/monotonic clock `" + t + "` in sim-critical code; "
                                "simulated time must come from sim::Engine::now()"));
      continue;
    }
    if (t == "time" && i + 1 < toks.size() && isPunct(toks[i + 1], "(")) {
      const bool stdQualified = i >= 2 && isPunct(toks[i - 1], "::") && isIdent(toks[i - 2], "std");
      const bool nullArg = i + 2 < toks.size() &&
                           (isIdent(toks[i + 2], "nullptr") || isIdent(toks[i + 2], "NULL") ||
                            (toks[i + 2].kind == Token::Kind::Number && toks[i + 2].text == "0"));
      if (stdQualified || nullArg) {
        out.push_back(makeFinding(file, toks[i].line, "DET-CLOCK",
                                  "`time()` reads the wall clock; simulated time must "
                                  "come from sim::Engine::now()"));
      }
    }
  }
}

void checkHash(const SourceFile& file, std::vector<Finding>& out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    if (isIdent(toks[i], "hash") && isPunct(toks[i - 1], "::") && isIdent(toks[i - 2], "std")) {
      out.push_back(makeFinding(file, toks[i].line, "DET-HASH",
                                "std::hash is implementation-defined and may vary across "
                                "platforms/ASLR; use util::hash64 (FNV-1a)"));
    }
  }
}

void checkSeedLiteral(const SourceFile& file, std::vector<Finding>& out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier) continue;
    const std::string lower = lowerCopy(toks[i].text);
    if (lower.size() < 4 || lower.compare(lower.size() - 4, 4, "seed") != 0) continue;
    // Flag seed *calls* with a bare numeric literal: `rng.seed(42)`,
    // `reseed(0xBEEF)`. Named defaults in options structs (`seed = 1`) are
    // the sanctioned single source of seeds and stay legal.
    if (isPunct(toks[i + 1], "(") && toks[i + 2].kind == Token::Kind::Number &&
        isPunct(toks[i + 3], ")")) {
      out.push_back(makeFinding(file, toks[i].line, "DET-SEED-LITERAL",
                                "ad-hoc literal seed; thread seeds from EngineOptions / "
                                "the owning options struct instead"));
    }
  }
}

bool orderInsensitiveAt(const Suppressions& sup, int line) {
  return sup.orderInsensitiveLines.count(line) != 0U ||
         sup.orderInsensitiveLines.count(line - 1) != 0U;
}

void checkUnorderedIter(const SourceFile& file, const SourceFile* pairedHeader,
                        const Suppressions& sup, std::vector<Finding>& out) {
  std::set<std::string> unordered;
  std::set<std::string> floats;
  collectUnorderedNames(file, unordered);
  collectFloatNames(file, floats);
  if (pairedHeader != nullptr) {
    collectUnorderedNames(*pairedHeader, unordered);
    collectFloatNames(*pairedHeader, floats);
  }
  if (unordered.empty()) return;

  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks[i], "for") || !isPunct(toks[i + 1], "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = matchingClose(toks, open);
    if (close >= toks.size()) continue;
    // Range-for: a single ':' at paren depth 1.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (isPunct(toks[j], "(")) ++depth;
      else if (isPunct(toks[j], ")")) --depth;
      else if (depth == 1 && isPunct(toks[j], ":")) { colon = j; break; }
    }
    if (colon == 0) continue;
    // The container expression's trailing identifier names the victim:
    // `node.flushInFlight` -> flushInFlight; a trailing call `x.items()`
    // names the method, which won't be in the declaration set.
    std::string name;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind == Token::Kind::Identifier &&
          (j + 1 >= close || !isPunct(toks[j + 1], "("))) {
        name = toks[j].text;
      }
    }
    if (name.empty() || unordered.count(name) == 0U) continue;

    const int line = toks[i].line;
    const bool waived = orderInsensitiveAt(sup, line);
    if (!waived) {
      out.push_back(makeFinding(file, line, "DET-UNORDERED-ITER",
                                "iterating unordered container `" + name + "`: element "
                                "order is platform/ASLR-dependent. Use std::map, drain a "
                                "sorted snapshot, or mark `// lint: order-insensitive -- "
                                "<why the body commutes>`"));
    }
    // Float accumulation is non-associative, so it is order-sensitive even
    // when the loop is *claimed* order-insensitive — check either way.
    std::size_t bodyEnd = close;
    if (close + 1 < toks.size() && isPunct(toks[close + 1], "{")) {
      bodyEnd = matchingClose(toks, close + 1);
    } else {
      for (bodyEnd = close + 1; bodyEnd < toks.size() && !isPunct(toks[bodyEnd], ";");
           ++bodyEnd) {
      }
    }
    for (std::size_t j = close + 1; j < bodyEnd && j < toks.size(); ++j) {
      if ((isPunct(toks[j], "+=") || isPunct(toks[j], "-=")) && j > 0 &&
          toks[j - 1].kind == Token::Kind::Identifier &&
          floats.count(toks[j - 1].text) != 0U) {
        out.push_back(makeFinding(file, toks[j].line, "DET-FLOAT-ACCUM",
                                  "floating-point accumulation into `" + toks[j - 1].text +
                                  "` inside an unordered-container loop is order-"
                                  "sensitive (FP addition is not associative); accumulate "
                                  "into a sorted snapshot instead"));
      }
    }
  }
}

// ---- resilience rules ------------------------------------------------------

/// Lexical scope frame used by RES-JSON-AT: tracks try-coverage, the
/// enclosing function's name, and `contains("key")` guards seen so far.
struct Frame {
  bool isTry = false;
  std::string func;  ///< lowercased; empty when unknown
  std::set<std::string> containsKeys;
};

bool checkedFunctionName(const std::string& lowerName) {
  static const char* kMarkers[] = {"fromjson", "parse", "load",
                                   "replay",   "decode", "restore"};
  for (const char* m : kMarkers) {
    if (lowerName.find(m) != std::string::npos) return true;
  }
  return false;
}

void checkJsonAt(const SourceFile& file, std::vector<Finding>& out) {
  const auto& toks = file.tokens;
  std::vector<Frame> frames;
  frames.push_back(Frame{});

  auto coveredByTry = [&]() {
    for (const Frame& f : frames) {
      if (f.isTry) return true;
    }
    return false;
  };
  auto coveredByFunc = [&]() {
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (!it->func.empty()) return checkedFunctionName(it->func);
    }
    return false;
  };
  auto coveredByContains = [&](const std::string& key) {
    for (const Frame& f : frames) {
      if (f.containsKeys.count(key) != 0U) return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (isPunct(t, "{")) {
      Frame frame;
      // `try {` (including function-try-blocks) opens a checked scope.
      if (i > 0 && isIdent(toks[i - 1], "try")) frame.isTry = true;
      // Function body? `name ( ... ) [const|noexcept|override|final]* {`
      std::size_t j = i;
      while (j > 0 && (isIdent(toks[j - 1], "const") || isIdent(toks[j - 1], "noexcept") ||
                       isIdent(toks[j - 1], "override") || isIdent(toks[j - 1], "final") ||
                       isIdent(toks[j - 1], "mutable"))) {
        --j;
      }
      if (j > 0 && isPunct(toks[j - 1], ")")) {
        int depth = 0;
        std::size_t k = j - 1;
        while (true) {
          if (isPunct(toks[k], ")")) ++depth;
          else if (isPunct(toks[k], "(") && --depth == 0) break;
          if (k == 0) break;
          --k;
        }
        if (k > 0 && toks[k - 1].kind == Token::Kind::Identifier) {
          static const std::set<std::string> kNotFuncs = {"if",    "for",   "while",
                                                          "switch", "catch", "return"};
          if (kNotFuncs.count(toks[k - 1].text) == 0U) {
            frame.func = lowerCopy(toks[k - 1].text);
          }
        }
      }
      frames.push_back(frame);
      continue;
    }
    if (isPunct(t, "}")) {
      if (frames.size() > 1) frames.pop_back();
      continue;
    }
    // Record `contains("key")` guards for the current scope chain.
    if (isIdent(t, "contains") && i + 2 < toks.size() && isPunct(toks[i + 1], "(") &&
        toks[i + 2].kind == Token::Kind::String) {
      frames.back().containsKeys.insert(toks[i + 2].text);
      continue;
    }
    // `.at("key")` / `->at("key")` with a single string argument.
    if (isIdent(t, "at") && i > 0 &&
        (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")) && i + 1 < toks.size() &&
        isPunct(toks[i + 1], "(")) {
      const std::size_t open = i + 1;
      const std::size_t close = matchingClose(toks, open);
      if (close >= toks.size()) continue;
      int depth = 0;
      bool multiArg = false;
      std::string key;
      for (std::size_t j = open; j < close; ++j) {
        if (isPunct(toks[j], "(") || isPunct(toks[j], "{") || isPunct(toks[j], "[")) ++depth;
        else if (isPunct(toks[j], ")") || isPunct(toks[j], "}") || isPunct(toks[j], "]")) --depth;
        else if (depth == 1 && isPunct(toks[j], ",")) multiArg = true;
        else if (depth == 1 && toks[j].kind == Token::Kind::String && key.empty()) {
          key = toks[j].text;
        }
      }
      if (multiArg || key.empty()) continue;  // dataframe .at("col", row) etc.
      if (coveredByTry() || coveredByFunc() || coveredByContains(key)) continue;
      out.push_back(makeFinding(file, t.line, "RES-JSON-AT",
                                ".at(\"" + key + "\") throws on absent keys; guard with "
                                "contains(), use a defaulted getter, or do the access "
                                "inside a parse/replay function's try scope"));
    }
  }
}

void checkCounterNames(const SourceFile& file, const RuleContext& ctx,
                       std::vector<Finding>& out) {
  if (!ctx.haveCatalogue) return;
  static const std::set<std::string> kCallees = {"counter", "gauge", "histogram",
                                                 "count", "noteCounter"};
  auto metricShaped = [](const std::string& s) {
    if (s.empty() || std::islower(static_cast<unsigned char>(s[0])) == 0) return false;
    bool sawDot = false;
    char prev = '\0';
    for (const char c : s) {
      const bool ok = (std::islower(static_cast<unsigned char>(c)) != 0) ||
                      (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '_' ||
                      c == '.';
      if (!ok) return false;
      if (c == '.') {
        if (prev == '.' || prev == '\0') return false;
        sawDot = true;
      }
      prev = c;
    }
    return sawDot && prev != '.';
  };

  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier || kCallees.count(toks[i].text) == 0U ||
        !isPunct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t open = i + 1;
    const std::size_t close = matchingClose(toks, open);
    if (close >= toks.size()) continue;
    // First-argument span only (both branches of a ternary are checked).
    int depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (isPunct(toks[j], "(") || isPunct(toks[j], "{") || isPunct(toks[j], "[")) ++depth;
      else if (isPunct(toks[j], ")") || isPunct(toks[j], "}") || isPunct(toks[j], "]")) --depth;
      else if (depth == 1 && isPunct(toks[j], ",")) break;
      else if (toks[j].kind == Token::Kind::String && metricShaped(toks[j].text) &&
               ctx.metricNames.count(toks[j].text) == 0U) {
        out.push_back(makeFinding(file, toks[j].line, "RES-COUNTER-NAME",
                                  "metric name \"" + toks[j].text + "\" is not in "
                                  "src/obs/metric_names.hpp; register it there (the one "
                                  "place) or fix the typo"));
      }
    }
  }
}

void checkThrowTask(const SourceFile& file, std::vector<Finding>& out) {
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!isIdent(toks[i], "submit") || !isPunct(toks[i + 1], "(")) continue;
    const std::size_t open = i + 1;
    const std::size_t close = matchingClose(toks, open);
    if (close >= toks.size()) continue;
    // A `throw` inside the submitted callable escapes onto the worker
    // thread unless a `try` inside the same argument span catches it.
    std::vector<bool> tryStack;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (isPunct(toks[j], "{")) {
        tryStack.push_back(j > 0 && isIdent(toks[j - 1], "try"));
      } else if (isPunct(toks[j], "}")) {
        if (!tryStack.empty()) tryStack.pop_back();
      } else if (isIdent(toks[j], "throw")) {
        const bool covered =
            std::find(tryStack.begin(), tryStack.end(), true) != tryStack.end();
        if (!covered) {
          out.push_back(makeFinding(file, toks[j].line, "RES-THROW-TASK",
                                    "naked `throw` inside a task submitted to the thread "
                                    "pool: the exception is swallowed into the future / "
                                    "terminates the worker; catch it inside the task and "
                                    "convert to a result value"));
        }
      }
    }
  }
}

}  // namespace

// ---- catalogue -------------------------------------------------------------

const std::vector<RuleInfo>& ruleCatalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"DET-RANDOM", "no rand()/std::random_device/<random> engines in sim-critical code"},
      {"DET-CLOCK", "no wall/monotonic clocks in sim-critical code; use sim::Engine::now()"},
      {"DET-HASH", "no std::hash in sim-critical code; use util::hash64 (FNV-1a)"},
      {"DET-UNORDERED-ITER",
       "no iteration over unordered containers in sim-critical code unless marked "
       "order-insensitive"},
      {"DET-FLOAT-ACCUM", "no floating-point accumulation inside unordered-container loops"},
      {"DET-SEED-LITERAL", "seeds come from options structs, not ad-hoc literals"},
      {"RES-JSON-AT", "Json .at(\"key\") must be guarded, defaulted, or inside a parse scope"},
      {"RES-COUNTER-NAME", "metric names must be registered in src/obs/metric_names.hpp"},
      {"RES-THROW-TASK", "no naked throw across the ThreadPool task boundary"},
      {"LINT-SUPPRESS", "suppressions must name a known rule and carry a justification"},
  };
  return kRules;
}

bool isKnownRule(const std::string& id) {
  for (const RuleInfo& r : ruleCatalogue()) {
    if (id == r.id) return true;
  }
  return false;
}

bool isSimCritical(const std::string& repoRelPath) {
  static const char* kDirs[] = {"src/sim/",    "src/pfs/",    "src/core/",
                                "src/faults/", "src/agents/", "src/service/"};
  for (const char* dir : kDirs) {
    if (repoRelPath.rfind(dir, 0) == 0) return true;
  }
  return false;
}

// ---- suppressions ----------------------------------------------------------

Suppressions parseSuppressions(const SourceFile& file) {
  Suppressions sup;
  for (const Comment& comment : file.comments) {
    const std::string text = trimCopy(comment.text);
    const bool fileWide = text.rfind("lint-file:", 0) == 0;
    const bool lineWide = text.rfind("lint:", 0) == 0;
    if (!fileWide && !lineWide) continue;

    const std::string body = trimCopy(text.substr(fileWide ? 10 : 5));
    auto malformed = [&](const std::string& why) {
      Finding f = makeFinding(file, comment.line, "LINT-SUPPRESS", why);
      sup.malformed.push_back(std::move(f));
    };

    // Split off the mandatory ` -- justification`.
    const std::size_t sep = body.find("--");
    const std::string head = trimCopy(sep == std::string::npos ? body : body.substr(0, sep));
    const std::string justification =
        sep == std::string::npos ? std::string{} : trimCopy(body.substr(sep + 2));

    if (lineWide && head == "order-insensitive") {
      if (justification.empty()) {
        malformed("order-insensitive marker without a justification; write "
                  "`// lint: order-insensitive -- <why the loop body commutes>`");
        continue;
      }
      sup.orderInsensitiveLines.insert(comment.line);
      continue;
    }

    if (head.rfind("suppress(", 0) == 0 && !head.empty() && head.back() == ')') {
      const std::string rule = trimCopy(head.substr(9, head.size() - 10));
      if (!isKnownRule(rule)) {
        malformed("suppression names unknown rule `" + rule + "`; see --list-rules");
        continue;
      }
      if (rule == "LINT-SUPPRESS") {
        malformed("LINT-SUPPRESS cannot be suppressed");
        continue;
      }
      if (justification.empty()) {
        malformed("suppression without a justification; write `suppress(" + rule +
                  ") -- <reason>`");
        continue;
      }
      if (fileWide) {
        sup.fileRules[rule] = justification;
      } else {
        sup.lineRules[rule].insert(comment.line);
        sup.lineJustifications[rule + ":" + std::to_string(comment.line)] = justification;
      }
      continue;
    }

    malformed("unrecognised lint directive `" + text + "`; expected "
              "`suppress(RULE-ID) -- reason` or `order-insensitive -- reason`");
  }
  return sup;
}

bool Suppressions::apply(Finding& finding) const {
  if (finding.rule == "LINT-SUPPRESS") return false;
  const auto fileIt = fileRules.find(finding.rule);
  if (fileIt != fileRules.end()) {
    finding.suppressed = true;
    finding.justification = fileIt->second;
    return true;
  }
  const auto lineIt = lineRules.find(finding.rule);
  if (lineIt != lineRules.end()) {
    // A suppression on line L covers findings on L (trailing comment) and
    // L+1 (comment on its own line above the code).
    for (const int offset : {0, -1}) {
      const int commentLine = finding.line + offset;
      if (lineIt->second.count(commentLine) != 0U) {
        finding.suppressed = true;
        const auto justIt =
            lineJustifications.find(finding.rule + ":" + std::to_string(commentLine));
        if (justIt != lineJustifications.end()) finding.justification = justIt->second;
        return true;
      }
    }
  }
  return false;
}

// ---- per-file driver -------------------------------------------------------

void checkFile(const SourceFile& file, const SourceFile* pairedHeader,
               const RuleContext& ctx, const Suppressions& suppressions,
               std::vector<Finding>& out) {
  if (isSimCritical(file.path)) {
    checkRandom(file, out);
    checkClock(file, out);
    checkHash(file, out);
    checkSeedLiteral(file, out);
    checkUnorderedIter(file, pairedHeader, suppressions, out);
  }
  checkJsonAt(file, out);
  checkCounterNames(file, ctx, out);
  checkThrowTask(file, out);
}

}  // namespace stellar::lint

// stellar-lint CLI.
//
//   stellar_lint [--root DIR] [--json] [--include-suppressed] [--list-rules]
//                [PATH...]
//
// PATHs are files or directories relative to --root (default: src).
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage error.

#include <cstring>
#include <iostream>
#include <string>

#include "lint.hpp"

namespace {

void printUsage(std::ostream& out) {
  out << "usage: stellar_lint [--root DIR] [--json] [--include-suppressed]\n"
         "                    [--list-rules] [PATH...]\n"
         "\n"
         "Determinism & concurrency lint for the STELLAR tree (DESIGN.md §7).\n"
         "PATHs are files or directories relative to --root; default: src.\n"
         "Exit codes: 0 clean, 1 unsuppressed findings, 2 usage error.\n";
}

}  // namespace

int main(int argc, char** argv) {
  stellar::lint::Options options;
  options.paths.clear();
  bool json = false;
  bool includeSuppressed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (const auto& rule : stellar::lint::ruleCatalogue()) {
        std::cout << rule.id << "\t" << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--include-suppressed") {
      includeSuppressed = true;
      continue;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "stellar_lint: --root needs a directory\n";
        return 2;
      }
      options.repoRoot = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "stellar_lint: unknown option `" << arg << "`\n";
      printUsage(std::cerr);
      return 2;
    }
    options.paths.push_back(arg);
  }

  const stellar::lint::Report report = stellar::lint::run(options);
  if (json) {
    std::cout << stellar::lint::toJson(report) << "\n";
  } else {
    std::cout << stellar::lint::toText(report, includeSuppressed);
  }
  return report.unsuppressedCount() == 0 ? 0 : 1;
}

// Tokenizer for stellar-lint: identifiers, numbers, string/char literals,
// and a small set of multi-character punctuators. Comments are captured
// for the suppression grammar; preprocessor lines are dropped wholesale
// (an `#include <random>` is not a *use* of randomness).

#include <cctype>
#include <utility>

#include "lint.hpp"

namespace stellar::lint {
namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Two-character punctuators worth keeping atomic. `::` matters (so a
/// range-for `:` is unambiguous), the compound assignments matter for
/// DET-FLOAT-ACCUM; the rest avoid misleading single-char splits.
bool isTwoCharPunct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '-' || b == '=';
    case '+': return b == '+' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=';  // NOT '>>': template closers must stay single
    case '&': return b == '&';
    case '|': return b == '|';
    default: return false;
  }
}

}  // namespace

SourceFile lex(std::string path, const std::string& contents) {
  SourceFile file;
  file.path = std::move(path);

  // Split raw lines for snippets.
  std::string current;
  for (const char c : contents) {
    if (c == '\n') {
      file.lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    file.lines.push_back(current);
  }

  int line = 1;
  std::size_t i = 0;
  const std::size_t n = contents.size();
  bool atLineStart = true;  // only whitespace seen since the last newline

  while (i < n) {
    const char c = contents[i];
    if (c == '\n') {
      ++line;
      ++i;
      atLineStart = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: skip to end of line, honouring continuations.
    if (c == '#' && atLineStart) {
      while (i < n) {
        if (contents[i] == '\\' && i + 1 < n && contents[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (contents[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    atLineStart = false;

    // Line comment.
    if (c == '/' && i + 1 < n && contents[i + 1] == '/') {
      i += 2;
      std::string text;
      while (i < n && contents[i] != '\n') {
        text += contents[i++];
      }
      file.comments.push_back(Comment{line, std::move(text)});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && contents[i + 1] == '*') {
      i += 2;
      std::string text;
      while (i + 1 < n && !(contents[i] == '*' && contents[i + 1] == '/')) {
        if (contents[i] == '\n') {
          ++line;
        }
        text += contents[i++];
      }
      i = (i + 1 < n) ? i + 2 : n;
      file.comments.push_back(Comment{line, std::move(text)});
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && contents[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && contents[j] != '(') {
        delim += contents[j++];
      }
      const std::string closer = ")" + delim + "\"";
      std::string value;
      ++j;  // past '('
      while (j < n && contents.compare(j, closer.size(), closer) != 0) {
        if (contents[j] == '\n') {
          ++line;
        }
        value += contents[j++];
      }
      i = (j < n) ? j + closer.size() : n;
      file.tokens.push_back(Token{Token::Kind::String, std::move(value), line});
      continue;
    }

    // String literal.
    if (c == '"') {
      ++i;
      std::string value;
      while (i < n && contents[i] != '"') {
        if (contents[i] == '\\' && i + 1 < n) {
          value += contents[i + 1];
          i += 2;
          continue;
        }
        if (contents[i] == '\n') {
          ++line;  // unterminated; keep scanning to stay robust
        }
        value += contents[i++];
      }
      if (i < n) {
        ++i;  // closing quote
      }
      file.tokens.push_back(Token{Token::Kind::String, std::move(value), line});
      continue;
    }

    // Char literal. Heuristic guard: only when it plausibly starts one
    // (digit separators like 1'000'000 are handled in the number path).
    if (c == '\'') {
      ++i;
      std::string value;
      while (i < n && contents[i] != '\'') {
        if (contents[i] == '\\' && i + 1 < n) {
          value += contents[i + 1];
          i += 2;
          continue;
        }
        value += contents[i++];
      }
      if (i < n) {
        ++i;
      }
      file.tokens.push_back(Token{Token::Kind::CharLit, std::move(value), line});
      continue;
    }

    // Number (also eats hex/binary prefixes, suffixes, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::string value;
      while (i < n && (isIdentChar(contents[i]) || contents[i] == '\'' ||
                       contents[i] == '.' ||
                       ((contents[i] == '+' || contents[i] == '-') && i > 0 &&
                        (contents[i - 1] == 'e' || contents[i - 1] == 'E' ||
                         contents[i - 1] == 'p' || contents[i - 1] == 'P')))) {
        if (contents[i] != '\'') {
          value += contents[i];
        }
        ++i;
      }
      file.tokens.push_back(Token{Token::Kind::Number, std::move(value), line});
      continue;
    }

    // Identifier / keyword.
    if (isIdentStart(c)) {
      std::string value;
      while (i < n && isIdentChar(contents[i])) {
        value += contents[i++];
      }
      file.tokens.push_back(Token{Token::Kind::Identifier, std::move(value), line});
      continue;
    }

    // Punctuation.
    if (i + 1 < n && isTwoCharPunct(c, contents[i + 1])) {
      file.tokens.push_back(
          Token{Token::Kind::Punct, std::string{c, contents[i + 1]}, line});
      i += 2;
      continue;
    }
    file.tokens.push_back(Token{Token::Kind::Punct, std::string(1, c), line});
    ++i;
  }

  return file;
}

}  // namespace stellar::lint

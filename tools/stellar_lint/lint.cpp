// Driver for stellar-lint: tree walk, header pairing, suppression
// application, and report serialisation.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "lint.hpp"

namespace stellar::lint {
namespace fs = std::filesystem;

namespace {

bool isSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string readFile(const fs::path& p) {
  std::ifstream in{p, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Forward-slashed path of `p` relative to `root` (falls back to `p` when
/// not nested — e.g. an explicit file outside the root).
std::string relPath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  const fs::path& use = (ec || rel.empty()) ? p : rel;
  return use.generic_string();
}

void jsonEscape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
              << "0123456789abcdef"[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::size_t Report::suppressedCount() const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    n += f.suppressed ? 1U : 0U;
  }
  return n;
}

std::size_t Report::unsuppressedCount() const {
  return findings.size() - suppressedCount();
}

Report run(const Options& options) {
  const fs::path root = options.repoRoot;
  Report report;

  // Metric-name catalogue (RES-COUNTER-NAME is skipped when absent).
  RuleContext ctx;
  const fs::path cataloguePath = root / "src" / "obs" / "metric_names.hpp";
  if (fs::exists(cataloguePath)) {
    const SourceFile catalogue =
        lex(relPath(cataloguePath, root), readFile(cataloguePath));
    for (const Token& t : catalogue.tokens) {
      if (t.kind == Token::Kind::String && !t.text.empty()) {
        ctx.metricNames.insert(t.text);
      }
    }
    ctx.haveCatalogue = !ctx.metricNames.empty();
  }

  // Collect candidate files, sorted by repo-relative path so the report —
  // and therefore CI diffs — are stable across filesystems.
  std::vector<fs::path> paths = {};
  const std::vector<std::string>& roots =
      options.paths.empty() ? std::vector<std::string>{"src"} : options.paths;
  for (const std::string& p : roots) {
    const fs::path abs = root / p;
    if (fs::is_regular_file(abs)) {
      paths.push_back(abs);
      continue;
    }
    if (!fs::is_directory(abs)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(abs)) {
      if (entry.is_regular_file() && isSourceFile(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end(),
            [&](const fs::path& a, const fs::path& b) {
              return relPath(a, root) < relPath(b, root);
            });
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // Lex everything once; .cpp files get their same-stem header as context
  // for member declarations.
  std::map<std::string, SourceFile> lexed;
  for (const fs::path& p : paths) {
    const std::string rel = relPath(p, root);
    lexed.emplace(rel, lex(rel, readFile(p)));
  }

  for (const fs::path& p : paths) {
    const std::string rel = relPath(p, root);
    const SourceFile& file = lexed.at(rel);
    ++report.filesScanned;

    const SourceFile* paired = nullptr;
    SourceFile pairedStorage;
    if (p.extension() == ".cpp" || p.extension() == ".cc") {
      for (const char* ext : {".hpp", ".h"}) {
        fs::path header = p;
        header.replace_extension(ext);
        const std::string headerRel = relPath(header, root);
        const auto it = lexed.find(headerRel);
        if (it != lexed.end()) {
          paired = &it->second;
          break;
        }
        if (fs::exists(header)) {  // header exists but was outside the scan set
          pairedStorage = lex(headerRel, readFile(header));
          paired = &pairedStorage;
          break;
        }
      }
    }

    const Suppressions sup = parseSuppressions(file);
    std::vector<Finding> fileFindings;
    checkFile(file, paired, ctx, sup, fileFindings);
    for (Finding& f : fileFindings) {
      sup.apply(f);
      report.findings.push_back(std::move(f));
    }
    for (const Finding& f : sup.malformed) {
      report.findings.push_back(f);
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

std::string toJson(const Report& report) {
  std::ostringstream out;
  out << "{\"schema\":1,\"files_scanned\":" << report.filesScanned
      << ",\"summary\":{\"total\":" << report.findings.size()
      << ",\"suppressed\":" << report.suppressedCount()
      << ",\"unsuppressed\":" << report.unsuppressedCount() << "},\"findings\":[";
  bool first = true;
  for (const Finding& f : report.findings) {
    if (!first) out << ',';
    first = false;
    out << "{\"file\":";
    jsonEscape(out, f.file);
    out << ",\"line\":" << f.line << ",\"rule\":";
    jsonEscape(out, f.rule);
    out << ",\"message\":";
    jsonEscape(out, f.message);
    out << ",\"snippet\":";
    jsonEscape(out, f.snippet);
    out << ",\"suppressed\":" << (f.suppressed ? "true" : "false")
        << ",\"justification\":";
    jsonEscape(out, f.justification);
    out << '}';
  }
  out << "]}";
  return out.str();
}

std::string toText(const Report& report, bool includeSuppressed) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    if (f.suppressed && !includeSuppressed) continue;
    out << f.file << ':' << f.line << ": [" << f.rule << ']'
        << (f.suppressed ? " (suppressed)" : "") << ' ' << f.message << '\n';
    if (!f.snippet.empty()) {
      out << "  | " << f.snippet << '\n';
    }
    if (f.suppressed && !f.justification.empty()) {
      out << "  suppressed: " << f.justification << '\n';
    }
  }
  out << report.filesScanned << " files scanned, " << report.unsuppressedCount()
      << " finding(s), " << report.suppressedCount() << " suppressed\n";
  return out.str();
}

}  // namespace stellar::lint

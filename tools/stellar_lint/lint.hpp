// stellar-lint: a repo-specific determinism & concurrency static-analysis
// pass (DESIGN.md §7).
//
// The simulator's headline guarantees — ML-DET/ML-SHARD bit-identity
// across schedulers and shards, KILL-RESUME byte-identical session replay,
// campaign resume — are dynamic properties: the testkit can only catch a
// hazard a seed happens to exercise. stellar-lint proves the *static*
// preconditions of those guarantees at build time: no wall-clock or
// platform-varying hashing in sim-critical code, no event ordering derived
// from unordered-container iteration, seeds threaded from options structs
// rather than ad-hoc literals, JSON accesses checked or defaulted, metric
// names registered in the one catalogue, and no exceptions thrown naked
// across the thread-pool task boundary.
//
// Deliberately token/AST-lite (a lexer plus brace/paren-aware scanners,
// no libclang): the rules are repo idioms, not general C++ semantics, and
// the tool must build everywhere the repo builds. Heuristic misses are
// accepted; heuristic false positives are paid for with an explicit
// suppression that must carry a justification.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace stellar::lint {

// ---- lexer -----------------------------------------------------------------

struct Token {
  enum class Kind { Identifier, Number, String, CharLit, Punct };
  Kind kind = Kind::Punct;
  std::string text;  ///< string tokens hold the *unquoted* value
  int line = 0;
};

struct Comment {
  int line = 0;       ///< line the comment ends on
  std::string text;   ///< contents without the // or /* */ markers
};

struct SourceFile {
  std::string path;                 ///< repo-relative path
  std::vector<std::string> lines;   ///< raw source lines (for snippets)
  std::vector<Token> tokens;        ///< comments and preprocessor lines stripped
  std::vector<Comment> comments;
};

/// Tokenizes `contents`. Preprocessor lines are skipped entirely (their
/// identifiers — <random>, <chrono> — are not *uses*); comments are
/// collected separately for the suppression grammar.
[[nodiscard]] SourceFile lex(std::string path, const std::string& contents);

// ---- findings --------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string snippet;  ///< the offending source line, trimmed
  bool suppressed = false;
  std::string justification;  ///< non-empty iff suppressed
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule catalogue, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& ruleCatalogue();
[[nodiscard]] bool isKnownRule(const std::string& id);

// ---- suppression grammar ---------------------------------------------------
//
//   // lint: suppress(RULE-ID) -- justification        (this or next line)
//   // lint-file: suppress(RULE-ID) -- justification   (whole file)
//   // lint: order-insensitive -- justification        (waives
//        DET-UNORDERED-ITER for the loop on this or the next line; the
//        justification asserts the body commutes across element order)
//
// The justification is mandatory: a suppression without ` -- <text>`, or
// naming an unknown rule, is itself a finding (LINT-SUPPRESS) that cannot
// be suppressed.

struct Suppressions {
  /// rule -> lines carrying a line suppression (applies to line and line+1).
  std::map<std::string, std::set<int>> lineRules;
  /// rule -> justification for file-wide suppressions.
  std::map<std::string, std::string> fileRules;
  /// line -> justification, for line suppressions (keyed by rule+line).
  std::map<std::string, std::string> lineJustifications;  // "RULE:line"
  /// Lines with an order-insensitive marker (applies to line and line+1).
  std::set<int> orderInsensitiveLines;
  /// Malformed suppression comments (reported as LINT-SUPPRESS).
  std::vector<Finding> malformed;

  /// If `finding` is covered, marks it suppressed (with justification) and
  /// returns true.
  bool apply(Finding& finding) const;
};

[[nodiscard]] Suppressions parseSuppressions(const SourceFile& file);

// ---- rules -----------------------------------------------------------------

struct RuleContext {
  /// Metric names parsed from src/obs/metric_names.hpp.
  std::set<std::string> metricNames;
  /// True when the catalogue file was found (RES-COUNTER-NAME is skipped —
  /// with a warning finding — when it is missing).
  bool haveCatalogue = false;
};

/// True for paths under the determinism-critical directories
/// (src/sim, src/pfs, src/core, src/faults, src/agents).
[[nodiscard]] bool isSimCritical(const std::string& repoRelPath);

/// Runs every rule over `file`. `pairedHeader` is the same-stem .hpp for a
/// .cpp (member declarations live there), may be null. Suppressions are
/// applied by the caller; the order-insensitive marker set is consumed
/// here because it changes rule behaviour, not just reporting.
void checkFile(const SourceFile& file, const SourceFile* pairedHeader,
               const RuleContext& ctx, const Suppressions& suppressions,
               std::vector<Finding>& out);

// ---- driver ----------------------------------------------------------------

struct Options {
  std::string repoRoot = ".";          ///< directory containing src/
  std::vector<std::string> paths;      ///< files/dirs relative to repoRoot; default {"src"}
};

struct Report {
  std::vector<Finding> findings;  ///< stable order: path, then line
  std::size_t filesScanned = 0;

  [[nodiscard]] std::size_t suppressedCount() const;
  [[nodiscard]] std::size_t unsuppressedCount() const;
};

/// Scans the tree and returns every finding (suppressed ones included,
/// marked as such).
[[nodiscard]] Report run(const Options& options);

/// Machine-readable report (schema version 1; see tests/lint).
[[nodiscard]] std::string toJson(const Report& report);

/// Human diff-style report; suppressed findings shown only when requested.
[[nodiscard]] std::string toText(const Report& report, bool includeSuppressed);

}  // namespace stellar::lint

// Fig. 2: LLM hallucinations on storage-parameter details, versus the
// RAG-based extraction.
//
// The paper asks three frontier models for the definition and accepted
// range of llite.statahead_max and shows none answers fully correctly,
// while STELLAR's RAG extraction (on the older GPT-4o) is accurate. This
// harness replays that comparison mechanically — model memory is the
// ground truth corrupted at each profile's hallucination rate — and then
// extends it to all 13 tunables (fraction of correct facts per model).
#include <cstdio>

#include "common.hpp"
#include "core/offline_extractor.hpp"
#include "llm/knowledge.hpp"
#include "util/table.hpp"

using namespace stellar;

namespace {

const char* mark(bool ok) { return ok ? "[ok]" : "[X]"; }

}  // namespace

int main() {
  bench::printHeader("Parameter-fact accuracy: model memory vs RAG extraction",
                     "Figure 2");

  manual::SystemFacts facts;
  const manual::ParamFact* statahead = manual::findParamFact("llite.statahead_max");
  const llm::ResolvedRange truth = llm::resolveRange(*statahead, facts);

  const std::vector<llm::ModelProfile> models = {llm::gpt45(), llm::gemini25pro(),
                                                 llm::claude37Sonnet()};

  std::printf("\n--- llite.statahead_max (ground truth: range [%lld, %lld]) ---\n",
              static_cast<long long>(truth.min), static_cast<long long>(truth.max));
  std::printf("(each model probed across sessions; the first incorrect response "
              "is shown, as the paper's example does)\n");
  for (const llm::ModelProfile& model : models) {
    llm::ParamKnowledge k = llm::recallFromMemory(*statahead, model, facts, 0);
    for (std::uint64_t salt = 1; salt < 64 && k.corruption == llm::CorruptionKind::None;
         ++salt) {
      k = llm::recallFromMemory(*statahead, model, facts, salt);
    }
    std::printf("\n%s:\n", model.name.c_str());
    std::printf("  definition %s: %.110s...\n", mark(k.semanticallyAccurate()),
                k.description.c_str());
    std::printf("  range      %s: [%lld, %lld]\n", mark(k.rangeAccurate()),
                static_cast<long long>(k.minValue), static_cast<long long>(k.maxValue));
    std::printf("  corruption: %s\n", llm::corruptionName(k.corruption));
  }

  core::OfflineExtractor extractor;
  const core::ExtractionResult extraction = extractor.run(facts);
  const core::ExtractedParam* extracted = extraction.find("llite.statahead_max");
  std::printf("\nSTELLAR RAG extraction (gpt-4o):\n");
  if (extracted != nullptr) {
    std::printf("  definition [ok]: %.110s...\n",
                extracted->knowledge.description.c_str());
    std::printf("  range      %s: [%lld, %lld] (expressions: min=%s max=%s)\n",
                mark(extracted->knowledge.minValue == truth.min &&
                     extracted->knowledge.maxValue == truth.max),
                static_cast<long long>(extracted->knowledge.minValue),
                static_cast<long long>(extracted->knowledge.maxValue),
                extracted->minExpr.c_str(), extracted->maxExpr.c_str());
  } else {
    std::printf("  EXTRACTION FAILED\n");
  }

  // --- accuracy over all 13 tunables, several probes per parameter --------
  std::printf("\n--- fact accuracy across all 13 tunables (8 probes each) ---\n\n");
  util::Table table{{"model", "definition ok", "range ok", "fully correct"}};
  const auto tunables = manual::groundTruthTunables();
  for (const llm::ModelProfile& model : models) {
    int defOk = 0;
    int rangeOk = 0;
    int bothOk = 0;
    int total = 0;
    for (const std::string& name : tunables) {
      const manual::ParamFact* fact = manual::findParamFact(name);
      for (std::uint64_t salt = 0; salt < 8; ++salt) {
        const llm::ParamKnowledge k = llm::recallFromMemory(*fact, model, facts, salt);
        defOk += k.semanticallyAccurate() ? 1 : 0;
        rangeOk += k.rangeAccurate() ? 1 : 0;
        bothOk += k.corruption == llm::CorruptionKind::None ? 1 : 0;
        ++total;
      }
    }
    table.addRow({model.name,
                  bench::fmt(100.0 * defOk / total, 1) + "%",
                  bench::fmt(100.0 * rangeOk / total, 1) + "%",
                  bench::fmt(100.0 * bothOk / total, 1) + "%"});
  }
  // The RAG row: correct whenever the parameter was extracted.
  int ragCorrect = 0;
  for (const std::string& name : tunables) {
    ragCorrect += extraction.find(name) != nullptr ? 1 : 0;
  }
  table.addRow({"stellar-rag (gpt-4o)",
                bench::fmt(100.0 * ragCorrect / tunables.size(), 1) + "%",
                bench::fmt(100.0 * ragCorrect / tunables.size(), 1) + "%",
                bench::fmt(100.0 * ragCorrect / tunables.size(), 1) + "%"});
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected shape: every memory-only model reports some wrong "
              "definitions/ranges;\nthe RAG extraction is accurate for all "
              "extracted parameters.\n");
  return 0;
}

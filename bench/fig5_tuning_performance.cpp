// Fig. 5: wall time of default vs human expert vs STELLAR (no prior rule
// set) on the five benchmark workloads. Eight repeats per case, mean with
// 90% confidence interval, smaller is better.
#include <cstdio>

#include "baselines/expert.hpp"
#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader("STELLAR vs default and human expert (wall seconds)",
                     "Figure 5");

  pfs::PfsSimulator sim;
  const auto opt = bench::benchOptions();

  util::Table table{{"workload", "default (s)", "expert (s)", "STELLAR (s)",
                     "STELLAR speedup", "attempts"}};

  for (const std::string& name : workloads::benchmarkNames()) {
    const pfs::JobSpec job = workloads::byName(name, opt);

    const core::RepeatedMeasure def =
        core::measureConfig(sim, job, pfs::PfsConfig{}, {.repeats = 8, .seedBase = 100});
    const core::RepeatedMeasure expert =
        core::measureConfig(sim, job, baselines::expertConfig(name), {.repeats = 8, .seedBase = 200});

    core::StellarOptions options;
    options.seed = 42;
    const core::TuningEvaluation eval = core::evaluateTuning(sim, options, job, {.repeats = 8});
    const util::Summary best = eval.bestSummary();

    table.addRow({name, bench::meanCi(def.summary.mean, def.summary.ci90),
                  bench::meanCi(expert.summary.mean, expert.summary.ci90),
                  bench::meanCi(best.mean, best.ci90),
                  bench::fmt(def.summary.mean / best.mean) + "x",
                  bench::fmt(eval.meanAttempts(), 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape (paper): STELLAR well below default everywhere, at or\n"
      "near the expert level, and ahead of the expert on the multi-phase\n"
      "IO500; every tuning run finishes within five attempts.\n");
  return 0;
}

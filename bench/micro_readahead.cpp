// micro_readahead — sliding-window readahead engine gate.
//
// Cross-node sequential-read workload: writer ranks on node 0 publish
// private files, reader ranks on node 1 (cold page cache) scan them in
// 256 KiB chunks. The same job runs three ways:
//
//   RA on      default llite knobs (64/32/2 MiB): the window machine must
//              keep prefetch ahead of a sequential consumer
//   RA off     llite knobs zeroed: every read is a synchronous fetch
//   random     RA on, descending read offsets: the window machine must
//              stay out of the way (reset on every miss, no speculation)
//
// Machine-independent gates (absolute events/sec is not portable):
//   - host cost of simulating the job with RA on <= 1.10x the RA-off run:
//     the window machine is O(1) per read with batched SoA accounting, and
//     prefetch coalescing roughly halves the event count, so enabling
//     readahead may not make the same job dearer to simulate (per-EVENT
//     cost is the wrong normalization here — the two runs have different
//     event mixes, so the gated quantity is per-RUN; per-event figures are
//     emitted as informational metrics)
//   - cold sequential hit rate >= 0.95 (closed form: (N-1)/N per file)
//   - random-read hit rate <= 0.05, separation cold - random >= 0.90 —
//     the steepened response surface the rewrite exists for
//   - simulated read-phase speedup from enabling readahead >= 1.2x
//
// Flags:
//   --quick           fewer repeats (CI)
//   --baseline=FILE   compare ratio metrics against a committed
//                     BENCH_readahead.json; fail on a clear regression
//
// Emits BENCH_readahead.json (rows: name, metric, value) in the current
// directory — run from the repo root to refresh the checked-in copy.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "pfs/simulator.hpp"
#include "util/file.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace {

using namespace stellar;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr std::uint32_t kReaders = 4;
constexpr std::uint32_t kChunksPerFile = 32;
constexpr std::uint64_t kChunkBytes = 256 * util::kKiB;
constexpr std::uint64_t kFileBytes = kChunksPerFile * kChunkBytes;  // 8 MiB

pfs::ClusterSpec benchCluster() {
  pfs::ClusterSpec cluster = pfs::defaultCluster();
  cluster.clientNodes = 2;  // writers on node 0, cold readers on node 1
  cluster.ranksPerNode = kReaders;
  cluster.ossNodes = 1;
  cluster.ostsPerOss = 4;
  return cluster;
}

pfs::PfsConfig benchConfig(bool readaheadOn) {
  pfs::PfsConfig cfg;
  cfg.llite_max_read_ahead_mb = readaheadOn ? 64 : 0;
  cfg.llite_max_read_ahead_per_file_mb = readaheadOn ? 32 : 0;
  cfg.llite_max_read_ahead_whole_mb = readaheadOn ? 2 : 0;
  return cfg;
}

/// Writer rank i publishes /bench/f<i>; reader rank kReaders+i scans it.
/// `descending` flips the reader's chunk order to the random-access shape
/// (never sequential, so the window machine must reset instead of ramp).
pfs::JobSpec crossNodeReadJob(bool descending) {
  pfs::JobSpec job;
  job.name = descending ? "micro_readahead_random" : "micro_readahead_seq";
  job.ranks.resize(2 * kReaders);
  for (std::uint32_t i = 0; i < kReaders; ++i) {
    const pfs::FileId f = job.addFile("/bench/f" + std::to_string(i));
    auto& writer = job.ranks[i];
    writer.push_back(pfs::IoOp::create(f));
    for (std::uint64_t off = 0; off < kFileBytes; off += util::kMiB) {
      writer.push_back(pfs::IoOp::write(f, off, util::kMiB));
    }
    writer.push_back(pfs::IoOp::fsync(f));
    writer.push_back(pfs::IoOp::barrier());
    writer.push_back(pfs::IoOp::close(f));

    auto& reader = job.ranks[kReaders + i];
    reader.push_back(pfs::IoOp::barrier());
    reader.push_back(pfs::IoOp::open(f));
    for (std::uint32_t c = 0; c < kChunksPerFile; ++c) {
      const std::uint32_t chunk = descending ? kChunksPerFile - 1 - c : c;
      reader.push_back(
          pfs::IoOp::read(f, std::uint64_t{chunk} * kChunkBytes, kChunkBytes));
    }
    reader.push_back(pfs::IoOp::close(f));
  }
  return job;
}

struct BenchPoint {
  double wallPerRun = 0.0;   // host seconds per run, averaged over repeats
  double usPerEvent = 0.0;   // host cost per event (informational)
  double hitRate = 0.0;      // readahead hits / bytes read (simulated)
  double readPhase = 0.0;    // simulated seconds from barrier to last reader
};

BenchPoint runPoint(const char* label, const pfs::JobSpec& job,
                    const pfs::PfsConfig& cfg, int repeats) {
  const pfs::PfsSimulator sim{{.cluster = benchCluster()}};
  BenchPoint point;
  double totalSeconds = 0.0;
  std::uint64_t events = 0;
  for (int i = 0; i < repeats; ++i) {
    const auto start = Clock::now();
    const pfs::RunResult result = sim.run(job, cfg, /*seed=*/17);
    totalSeconds += secondsSince(start);
    events = result.counters.events;
    // INV-R1 partition: every read byte is a readahead hit, a readahead
    // miss, or a page-cache hit — the sum is the read-byte denominator.
    const double bytesRead =
        static_cast<double>(result.counters.readaheadHitBytes +
                            result.counters.readaheadMissBytes +
                            result.counters.pageCacheHitBytes);
    point.hitRate =
        static_cast<double>(result.counters.readaheadHitBytes) / bytesRead;
    double lastReader = 0.0;
    for (std::uint32_t r = kReaders; r < 2 * kReaders; ++r) {
      lastReader = std::max(lastReader, result.ranks[r].finishTime);
    }
    point.readPhase = lastReader - result.barrierTimes.front();
  }
  point.wallPerRun = totalSeconds / repeats;
  point.usPerEvent = 1e6 * point.wallPerRun / static_cast<double>(events);
  std::printf(
      "  %-10s %7.0f us/run  %5.2f us/event  hit rate %.4f  read phase %.3fs (x%d)\n",
      label, 1e6 * point.wallPerRun, point.usPerEvent, point.hitRate,
      point.readPhase, repeats);
  return point;
}

// Regression check against a committed BENCH_readahead.json: only the
// ratio metrics are stable enough across hosts to gate on, and each pairs
// a relative tolerance with an absolute floor/ceiling (the per-event ratio
// swings with host load; the hit rates are deterministic).
bool checkBaseline(const std::string& path, double hostCostRatio,
                   double separation) {
  util::Json doc;
  try {
    doc = util::Json::parse(util::readFile(path));
  } catch (const std::exception& e) {
    std::printf("FAIL: cannot read baseline %s: %s\n", path.c_str(), e.what());
    return false;
  }
  bool ok = true;
  for (const util::Json& row : doc.asArray()) {
    const std::string metric = row.at("metric").asString();
    const double value = row.at("value").asNumber();
    if (metric == "seqread_host_cost_ratio" &&
        hostCostRatio > std::max(value * 1.5, 1.10)) {
      std::printf("FAIL: seqread_host_cost_ratio regressed: %.3f -> %.3f "
                  "(limit max(1.5x baseline, 1.10))\n",
                  value, hostCostRatio);
      ok = false;
    }
    if (metric == "hit_rate_separation" && separation < value - 0.02) {
      std::printf("FAIL: hit_rate_separation regressed: %.4f -> %.4f "
                  "(limit baseline - 0.02)\n",
                  value, separation);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline = argv[i] + 11;
    } else {
      std::printf("usage: %s [--quick] [--baseline=BENCH_readahead.json]\n",
                  argv[0]);
      return 2;
    }
  }

  std::printf("micro_readahead: sliding-window readahead gate%s\n",
              quick ? " (quick)" : "");
  // Single runs are sub-millisecond; average many so scheduler noise and
  // frequency wander cancel instead of deciding the per-run cost ratio.
  const int repeats = quick ? 60 : 240;
  bool ok = true;

  const pfs::JobSpec seqJob = crossNodeReadJob(/*descending=*/false);
  const pfs::JobSpec randomJob = crossNodeReadJob(/*descending=*/true);
  const BenchPoint on = runPoint("seq RA-on", seqJob, benchConfig(true), repeats);
  const BenchPoint off =
      runPoint("seq RA-off", seqJob, benchConfig(false), repeats);
  const BenchPoint random =
      runPoint("random", randomJob, benchConfig(true), repeats);

  const double hostCostRatio = on.wallPerRun / off.wallPerRun;
  const double separation = on.hitRate - random.hitRate;
  const double speedup = off.readPhase / on.readPhase;
  std::printf("  host cost per run RA-on/RA-off: %.3f (gate <= 1.10)\n",
              hostCostRatio);
  std::printf("  hit-rate separation cold seq vs random: %.4f (gate >= 0.90)\n",
              separation);
  std::printf("  simulated read-phase speedup from RA: %.2fx (gate >= 1.2)\n",
              speedup);

  // The window machine is O(1) per read with batched accounting, and its
  // coalesced prefetch RPCs shrink the event count: the same job may not
  // become dearer to simulate when readahead is enabled.
  if (hostCostRatio > 1.10) {
    std::printf("FAIL: readahead made the job %.2fx dearer to simulate "
                "(gate <= 1.10)\n",
                hostCostRatio);
    ok = false;
  }
  // Closed form per file: (N-1)/N chunks hit = 31/32 ~ 0.969.
  if (on.hitRate < 0.95) {
    std::printf("FAIL: cold sequential hit rate %.4f (gate >= 0.95)\n",
                on.hitRate);
    ok = false;
  }
  if (random.hitRate > 0.05) {
    std::printf("FAIL: random-read hit rate %.4f (gate <= 0.05): the window "
                "machine is speculating against a random reader\n",
                random.hitRate);
    ok = false;
  }
  if (separation < 0.90) {
    std::printf("FAIL: hit-rate separation %.4f (gate >= 0.90)\n", separation);
    ok = false;
  }
  if (speedup < 1.2) {
    std::printf("FAIL: enabling readahead sped reads up only %.2fx (gate >= 1.2)\n",
                speedup);
    ok = false;
  }

  if (!baseline.empty() && !checkBaseline(baseline, hostCostRatio, separation)) {
    ok = false;
  }

  util::Json doc = util::Json::makeArray();
  const auto row = [&doc](const std::string& metric, double value) {
    util::Json r = util::Json::makeObject();
    r.set("name", "micro_readahead");
    r.set("metric", metric);
    r.set("value", value);
    doc.push(std::move(r));
  };
  row("seqread_us_per_event_ra_on", on.usPerEvent);
  row("seqread_us_per_event_ra_off", off.usPerEvent);
  row("seqread_host_cost_ratio", hostCostRatio);
  row("cold_seq_hit_rate", on.hitRate);
  row("random_hit_rate", random.hitRate);
  row("hit_rate_separation", separation);
  row("read_phase_speedup", speedup);
  util::writeFile("BENCH_readahead.json", doc.dump(2) + "\n");
  std::printf("wrote BENCH_readahead.json\n");

  std::printf("%s\n",
              ok ? "micro_readahead gate PASSED" : "micro_readahead gate FAILED");
  return ok ? 0 : 1;
}

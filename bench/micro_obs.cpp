// micro_obs — overhead of the observability layer on the hot simulation
// path. Three arms, identical work (repeated PfsSimulator runs of the
// IOR-hard workload):
//
//   baseline   no tracer / no registry attached (the pre-obs fast path)
//   disabled   tracer + registry attached, tracer disabled (the cost of
//              the instrumentation guards: one relaxed load per site)
//   enabled    tracer recording, registry collecting (full telemetry)
//   faultfree  empty FaultPlan attached (the faults layer present but
//              inactive: the cost of its null-injector guards)
//
// The acceptance bar is "disabled" and "faultfree" within 2% of
// "baseline". Iterations alternate between arms so slow drift (thermal,
// other tenants) hits all arms equally.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "faults/fault_plan.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace stellar;
using Clock = std::chrono::steady_clock;

double runOnce(const pfs::PfsSimulator& simulator, const pfs::JobSpec& job,
               std::uint64_t seed) {
  const auto start = Clock::now();
  const pfs::RunResult result = simulator.run(job, pfs::PfsConfig{}, seed);
  const auto stop = Clock::now();
  (void)result;
  return std::chrono::duration<double>(stop - start).count();
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double minimum(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 60;

  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = 0.05;
  const pfs::JobSpec job = workloads::byName("IOR_64K", wopts);

  pfs::PfsSimulator baseline;  // no sinks attached at all

  obs::Tracer disabledTracer{{.enabled = false}};
  obs::CounterRegistry disabledRegistry;
  pfs::PfsSimulator disabled{
      {.tracer = &disabledTracer, .counters = &disabledRegistry}};

  obs::Tracer enabledTracer{{.enabled = true}};
  obs::CounterRegistry enabledRegistry;
  pfs::PfsSimulator enabled{
      {.tracer = &enabledTracer, .counters = &enabledRegistry}};

  const faults::FaultPlan emptyPlan;
  pfs::PfsSimulator faultfree{{.faults = &emptyPlan}};

  // Warm-up: touch every code path once before timing.
  (void)runOnce(baseline, job, 1);
  (void)runOnce(disabled, job, 1);
  (void)runOnce(enabled, job, 1);
  (void)runOnce(faultfree, job, 1);

  std::vector<double> tBaseline, tDisabled, tEnabled, tFaultfree;
  tBaseline.reserve(iterations);
  tDisabled.reserve(iterations);
  tEnabled.reserve(iterations);
  tFaultfree.reserve(iterations);
  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t seed = 100 + static_cast<std::uint64_t>(i);
    tBaseline.push_back(runOnce(baseline, job, seed));
    tDisabled.push_back(runOnce(disabled, job, seed));
    tEnabled.push_back(runOnce(enabled, job, seed));
    tFaultfree.push_back(runOnce(faultfree, job, seed));
  }

  // The gate compares per-arm minima: the minimum over many interleaved
  // iterations approximates each arm's noise-free floor, where medians on
  // a shared machine swing several percent between invocations — more
  // than the effect being measured.
  const double floorBaseline = minimum(tBaseline);
  const double floorDisabled = minimum(tDisabled);
  const double disabledOverhead = (floorDisabled / floorBaseline - 1.0) * 100.0;
  const double enabledOverhead = (minimum(tEnabled) / floorBaseline - 1.0) * 100.0;
  const double faultfreeOverhead = (minimum(tFaultfree) / floorBaseline - 1.0) * 100.0;

  std::printf("micro_obs: %d iterations of IOR_64K (scale %.2f)\n", iterations,
              wopts.scale);
  std::printf("  %-22s min %8.3f ms  (median %8.3f ms)\n", "baseline (no sinks)",
              floorBaseline * 1e3, median(tBaseline) * 1e3);
  std::printf("  %-22s min %8.3f ms  (median %8.3f ms)  overhead %+6.2f%%\n",
              "tracing disabled", floorDisabled * 1e3, median(tDisabled) * 1e3,
              disabledOverhead);
  std::printf("  %-22s min %8.3f ms  (median %8.3f ms)  overhead %+6.2f%%  (%llu records)\n",
              "tracing enabled", minimum(tEnabled) * 1e3, median(tEnabled) * 1e3,
              enabledOverhead, static_cast<unsigned long long>(enabledTracer.recorded()));
  std::printf("  %-22s min %8.3f ms  (median %8.3f ms)  overhead %+6.2f%%\n",
              "faults (empty plan)", minimum(tFaultfree) * 1e3, median(tFaultfree) * 1e3,
              faultfreeOverhead);

  const bool pass = disabledOverhead < 2.0 && faultfreeOverhead < 2.0;
  std::printf("disabled-overhead budget: <2%%  ->  %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// §4.2 offline extraction quality: does the RAG pipeline rediscover the 13
// high-impact tunables from the full candidate universe, and where does
// every decoy parameter land?
#include <cstdio>

#include "common.hpp"
#include "core/offline_extractor.hpp"
#include "llm/token_meter.hpp"
#include "util/strings.hpp"

using namespace stellar;

int main() {
  bench::printHeader("RAG-based parameter extraction quality", "Section 4.2");

  manual::SystemFacts facts;
  llm::TokenMeter meter;
  core::OfflineExtractor extractor;
  const core::ExtractionResult result = extractor.run(facts, &meter);

  std::printf("manual chunks indexed: %zu\n", result.chunksIndexed);
  std::printf("candidates: %zu exposed parameters\n",
              manual::allParamFacts().size());
  std::printf("extracted tunables: %zu (precision %.2f, recall %.2f)\n\n",
              result.tunables.size(), result.precision(), result.recall());

  util::Table table{{"parameter", "resolved range", "range expressions"}};
  for (const core::ExtractedParam& p : result.tunables) {
    table.addRow({p.name,
                  "[" + std::to_string(p.knowledge.minValue) + ", " +
                      std::to_string(p.knowledge.maxValue) + "]",
                  p.minExpr + " .. " + p.maxExpr});
  }
  std::printf("%s\n", table.render().c_str());

  const auto bucket = [](const char* title, const std::vector<std::string>& names) {
    std::printf("%s (%zu): %s\n", title, names.size(),
                util::join(names, ", ").c_str());
  };
  bucket("filtered: not writable", result.filteredNotWritable);
  bucket("filtered: insufficient documentation", result.filteredInsufficientDocs);
  bucket("filtered: binary trade-off", result.filteredBinary);
  bucket("filtered: low performance impact", result.filteredLowImpact);

  const llm::UsageTotals usage = meter.totals("extraction");
  std::printf("\nextraction LLM usage: %zu calls, %zu input tokens, %zu output tokens\n",
              usage.calls, usage.inputTokens, usage.outputTokens);
  std::printf(
      "Expected shape (paper): a 13-parameter tunable set survives; binary\n"
      "integrity switches, format-time settings, diagnostics, and\n"
      "undocumented knobs are filtered with documented provenance.\n");
  return 0;
}

// fault_resilience — end-to-end resilience of the tuning loop under the
// three canned fault scenarios (src/faults). For each scenario the full
// STELLAR loop tunes one bandwidth and the retry machinery is exercised
// by the injected fault windows; the bench reports, per scenario:
//
//   - default vs tuned wall time under faults (the loop must still help)
//   - RPC resilience counters (timeouts / retries / gave-up)
//   - measurements the engine had to retry or skip
//
// Gate: every scenario's tuning run completes, and the degraded-ost
// scenario (the acceptance scenario) still improves on the default.
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "faults/fault_plan.hpp"
#include "obs/counters.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace stellar;

struct ScenarioRow {
  std::string name;
  double defaultSeconds = 0.0;
  double bestSeconds = 0.0;
  double speedup = 0.0;
  double timeouts = 0.0;
  double retries = 0.0;
  double gaveUp = 0.0;
  double windows = 0.0;
  double retriedMeasures = 0.0;
  double skippedMeasures = 0.0;
  bool completed = false;
};

ScenarioRow runScenario(const std::string& scenario, const std::string& workload) {
  ScenarioRow row;
  row.name = scenario;

  const faults::FaultPlan plan = faults::scenarioByName(scenario);
  obs::CounterRegistry registry;
  pfs::PfsSimulator simulator{{.counters = &registry, .faults = &plan}};

  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = 0.05;
  const pfs::JobSpec job = workloads::byName(workload, wopts);

  core::StellarOptions options;
  options.seed = 42;
  options.agent.seed = 42;
  core::StellarEngine engine{simulator, options};
  const core::TuningRunResult run = engine.tune(job);

  row.defaultSeconds = run.defaultSeconds;
  row.bestSeconds = run.bestSeconds;
  row.speedup = run.bestSpeedup();
  row.completed = run.defaultSeconds > 0.0;
  row.timeouts = registry.counter("pfs.rpc.timeouts").value();
  row.retries = registry.counter("pfs.rpc.retries").value();
  row.gaveUp = registry.counter("pfs.rpc.gave_up").value();
  row.windows = registry.counter("faults.windows_opened").value();
  row.skippedMeasures = registry.counter("core.tuning.measurements_skipped").value();
  for (const obs::MetricSample& sample : registry.snapshot()) {
    if (sample.key.name == "core.tuning.measurements_retried") {
      row.retriedMeasures += sample.value;
    }
  }
  return row;
}

}  // namespace

int main() {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"degraded-ost", "IOR_16M"},
      {"flaky-network", "IOR_64K"},
      {"mds-storm", "MDWorkbench_8K"},
  };

  std::printf("%-14s %10s %10s %8s %9s %9s %7s %8s %8s %8s\n", "scenario",
              "default_s", "best_s", "speedup", "timeouts", "retries", "gaveup",
              "windows", "remeas", "skipped");

  bool allCompleted = true;
  double degradedSpeedup = 0.0;
  for (const auto& [scenario, workload] : cases) {
    const ScenarioRow row = runScenario(scenario, workload);
    std::printf("%-14s %10.2f %10.2f %7.2fx %9.0f %9.0f %7.0f %8.0f %8.0f %8.0f\n",
                row.name.c_str(), row.defaultSeconds, row.bestSeconds, row.speedup,
                row.timeouts, row.retries, row.gaveUp, row.windows,
                row.retriedMeasures, row.skippedMeasures);
    allCompleted = allCompleted && row.completed;
    if (row.name == "degraded-ost") {
      degradedSpeedup = row.speedup;
    }
  }

  const bool pass = allCompleted && degradedSpeedup > 1.0;
  std::printf("gate: all scenarios complete && degraded-ost speedup > 1.0  ->  %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// service_fleet — the stellard service gate: fleet throughput, tail
// latency, coalescing, and the service determinism law.
//
// One request schedule (3 tenants x several cells, with duplicate
// submissions that must coalesce) is run through TuningService four ways:
// 1 worker and 8 workers, each with and without an injected `llm:` fault
// plan. Per-session result documents (latency-free by construction) are
// concatenated in session order and byte-compared across worker counts.
//
// Gate (exit non-zero on breach):
//   - >= 8 concurrent sessions accepted, all completed, none failed
//   - coalescing hit rate > 0 and fresh engine runs == distinct cells
//   - 1-vs-8-worker documents byte-identical, fault-free AND faulted
//   - p99 session latency measured (> 0) via the injected clock
//
// Emits BENCH_service.json (rows: name, metric, value, seed) in the
// current directory — run from the repo root to refresh the checked-in
// copy. `--quick` shrinks the schedule for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using namespace stellar;

std::uint64_t monotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<service::SubmitOptions> schedule(bool quick,
                                             const std::string& faults) {
  // Duplicates are deliberate: bob re-asks alice's cells (cross-tenant
  // coalescing) and carol re-asks her own. 10 sessions over 7 cells in
  // quick mode; 14 over 10 otherwise.
  std::vector<service::SubmitOptions> out;
  const auto add = [&](const std::string& tenant, const std::string& workload,
                       std::uint64_t seed) {
    service::SubmitOptions request;
    request.tenant = tenant;
    request.workload = workload;
    request.seed = seed;
    request.scale = 0.05;
    request.faults = faults;
    request.warmStart = false;
    out.push_back(request);
  };
  add("alice", "IOR_64K", 7);
  add("bob", "IOR_64K", 7);  // duplicate of alice's: coalesces
  add("alice", "MDWorkbench_8K", 7);
  add("carol", "IOR_16M", 7);
  add("carol", "IOR_16M", 7);  // same-tenant duplicate: coalesces
  add("bob", "IOR_64K", 8);
  add("alice", "IOR_16M", 8);
  add("bob", "MDWorkbench_8K", 7);  // duplicate of alice's: coalesces
  add("carol", "IOR_64K", 9);
  add("alice", "MDWorkbench_8K", 9);
  if (!quick) {
    add("bob", "IOR_16M", 10);
    add("carol", "MDWorkbench_8K", 10);
    add("bob", "IOR_16M", 10);  // duplicate: coalesces
    add("alice", "IOR_64K", 11);
  }
  return out;
}

struct FleetRun {
  std::string docs;           // concatenated per-session result documents
  service::ServiceStats stats;
  std::vector<double> latencySeconds;  // per-session, injected clock
  double wallSeconds = 0.0;
};

FleetRun runFleet(bool quick, const std::string& faults, std::size_t workers) {
  service::ServiceOptions options;
  options.workers = workers;
  options.clock = &monotonicNanos;
  service::TenantPolicy heavy;
  heavy.weight = 2.0;
  options.tenants["alice"] = heavy;  // weighted fairness on a live schedule
  service::TuningService fleet{options};

  const auto t0 = std::chrono::steady_clock::now();
  for (const service::SubmitOptions& request : schedule(quick, faults)) {
    const service::SubmitResult submitted = fleet.submit(request);
    if (!submitted.accepted()) {
      std::printf("FAIL: submission rejected: %s\n",
                  submitted.rejection->detail.c_str());
      return {};
    }
  }
  FleetRun run;
  for (const service::SessionResult& result : fleet.drainAll()) {
    run.docs += result.toJson().dump() + "\n";
    run.latencySeconds.push_back(
        static_cast<double>(result.completeNanos - result.submitNanos) * 1e-9);
  }
  run.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.stats = fleet.stats();
  return run;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

struct Row {
  std::string metric;
  double value = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick = quick || std::strcmp(argv[i], "--quick") == 0;
  }
  const std::string faultPlan = "llm:timeout:0.3@0-99";
  std::vector<Row> rows;
  bool ok = true;

  // The headline run: 8 workers, no faults.
  const FleetRun fleet = runFleet(quick, "", 8);
  const std::size_t sessions = fleet.stats.submitted;
  const double hitRate = sessions == 0 ? 0.0
                                       : static_cast<double>(fleet.stats.coalesced) /
                                             static_cast<double>(sessions);
  const double p50 = percentile(fleet.latencySeconds, 0.50);
  const double p99 = percentile(fleet.latencySeconds, 0.99);
  const double throughput =
      fleet.wallSeconds > 0 ? static_cast<double>(sessions) / fleet.wallSeconds : 0.0;
  std::printf("fleet: %zu sessions (%zu cells) in %.2fs — %.1f sessions/s, "
              "p50 %.0f ms, p99 %.0f ms, coalescing %.0f%%\n",
              sessions, fleet.stats.freshRuns, fleet.wallSeconds, throughput,
              p50 * 1e3, p99 * 1e3, hitRate * 100);
  rows.push_back({"sessions", static_cast<double>(sessions)});
  rows.push_back({"distinct_cells", static_cast<double>(fleet.stats.freshRuns)});
  rows.push_back({"throughput_sessions_per_sec", throughput});
  rows.push_back({"latency_p50_seconds", p50});
  rows.push_back({"latency_p99_seconds", p99});
  rows.push_back({"coalescing_hit_rate", hitRate});
  if (sessions < 8) {
    std::printf("FAIL: gate needs >= 8 concurrent sessions, got %zu\n", sessions);
    ok = false;
  }
  if (fleet.stats.completed != sessions || fleet.stats.failed != 0) {
    std::printf("FAIL: %zu/%zu completed, %zu failed\n", fleet.stats.completed,
                sessions, fleet.stats.failed);
    ok = false;
  }
  if (fleet.stats.coalesced == 0 ||
      fleet.stats.freshRuns + fleet.stats.coalesced != sessions) {
    std::printf("FAIL: coalescing broke (%zu coalesced, %zu fresh of %zu)\n",
                fleet.stats.coalesced, fleet.stats.freshRuns, sessions);
    ok = false;
  }
  if (p99 <= 0.0) {
    std::printf("FAIL: injected clock produced no latency stamps\n");
    ok = false;
  }

  // Determinism law: byte-identical per-session documents at 1 and 8
  // workers, fault-free and under an injected llm: fault plan.
  for (const bool faulted : {false, true}) {
    const std::string faults = faulted ? faultPlan : "";
    const std::string docs1 = runFleet(quick, faults, 1).docs;
    const std::string& docs8 = faulted ? runFleet(quick, faults, 8).docs : fleet.docs;
    const bool identical = !docs1.empty() && docs1 == docs8;
    rows.push_back({faulted ? "byte_identical_1v8_faulted" : "byte_identical_1v8",
                    identical ? 1.0 : 0.0});
    std::printf("%s 1-vs-8-worker documents: %s (%zu bytes)\n",
                faulted ? "faulted" : "fault-free",
                identical ? "byte-identical" : "DIFFER", docs1.size());
    if (!identical) {
      std::printf("FAIL: worker count leaked into %s results\n",
                  faulted ? "faulted" : "fault-free");
      ok = false;
    }
  }

  util::Json doc = util::Json::makeArray();
  for (const Row& row : rows) {
    util::Json r = util::Json::makeObject();
    r.set("name", "service");
    r.set("metric", row.metric);
    r.set("value", row.value);
    r.set("seed", static_cast<std::int64_t>(7));
    doc.push(std::move(r));
  }
  util::writeFile("BENCH_service.json", doc.dump(2) + "\n");
  std::printf("wrote BENCH_service.json (%zu rows)\n", rows.size());
  std::printf("%s\n", ok ? "service gate PASSED" : "service gate FAILED");
  return ok ? 0 : 1;
}

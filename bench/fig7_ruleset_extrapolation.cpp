// Fig. 7: rule-set extrapolation — tune the three previously *unseen* real
// applications with and without a global Rule Set accumulated from the
// benchmark workloads only (§5.3.2).
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader(
      "Rule-set extrapolation to unseen real applications (per-iteration speedup)",
      "Figure 7");

  pfs::PfsSimulator sim;
  const auto opt = bench::benchOptions();

  // Rules come exclusively from the benchmark suite.
  rules::RuleSet global;
  for (const std::string& name : workloads::benchmarkNames()) {
    const pfs::JobSpec job = workloads::byName(name, opt);
    core::StellarOptions options;
    options.seed = 7;
    options.agent.seed = 7;
    core::StellarEngine engine{sim, options};
    (void)engine.tune(job, &global);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\nglobal rule set from benchmarks: %zu rules\n\n", global.size());

  for (const std::string& name : workloads::realAppNames()) {
    const pfs::JobSpec job = workloads::byName(name, opt);
    core::StellarOptions options;
    options.seed = 42;

    const core::TuningEvaluation without = core::evaluateTuning(sim, options, job, {.repeats = 8});
    const core::TuningEvaluation with =
        core::evaluateTuning(sim, options, job, {.repeats = 8, .globalRules = &global});

    const auto seriesW = without.meanIterationSpeedups();
    const auto seriesR = with.meanIterationSpeedups();
    std::printf("--- %s ---\n", name.c_str());
    util::Table table{{"iteration", "no rule set (speedup)", "with rule set (speedup)"}};
    const std::size_t n = std::max(seriesW.size(), seriesR.size());
    for (std::size_t k = 0; k < n; ++k) {
      table.addRow({std::to_string(k),
                    k < seriesW.size() ? bench::fmt(seriesW[k]) + "x" : "",
                    k < seriesR.size() ? bench::fmt(seriesR[k]) + "x" : ""});
    }
    table.addRow({"attempts", bench::fmt(without.meanAttempts(), 1),
                  bench::fmt(with.meanAttempts(), 1)});
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "Expected shape (paper): with the rule set, convergence is more stable\n"
      "and early iterations avoid the near-default configurations that cold\n"
      "starts explore.\n");
  return 0;
}

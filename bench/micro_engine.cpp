// micro_engine — datacenter-scale event-engine gate.
//
// Part 1 (scheduler microbenchmark): a deep, constantly-churning event
// queue (50k pending events, millions processed) timed under the binary
// heap and the calendar queue. The calendar queue's O(1) amortized
// schedule/pop must hold: it may not fall below 0.9x the heap's
// events/sec, and usually beats it outright at this depth.
//
// Part 2 (scale gate): every rank runs the same program (create, a few
// 1 MiB writes, fsync, close) on
//   1x   — 500 OSTs /  5,000 ranks, monolithic heap engine (the old
//          engine's world), and
//   10x  — 5,000 OSTs / 50,000 ranks across 1,000 federated cells on the
//          sharded calendar engine.
// The 10x point processes 10x the events, so raw wall time is machine-
// bound: on a single-core box it cannot beat 10x no matter how good the
// engine is. The machine-independent gate is therefore per-event wall
// cost: the 10x cluster must cost < 2.0x the 1x heap baseline per event.
// On a box with >= 5 cores, that bound plus free-run sharding (cells
// never interact, shards run concurrently to completion) yields the
// headline claim: a 10x larger simulated cluster in < 2x the wall time.
// Each point averages enough repeats to accumulate a comparable total
// duration, so host frequency wander cancels instead of deciding the gate.
//
// Part 3 (full mode only, informational): a 100x point — 50,000 OSTs /
// 500,000 ranks — reported but not gated.
//
// Flags:
//   --quick           fewer repeats and skip the 100x point (CI)
//   --baseline=FILE   compare ratio metrics against a previous
//                     BENCH_engine.json; fail on a clear regression
//                     (wide relative tolerance + absolute floor, see
//                     checkBaseline — the ratios are noisy run to run)
//
// Emits BENCH_engine.json (rows: name, metric, value) in the current
// directory — run from the repo root to refresh the checked-in copy.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pfs/simulator.hpp"
#include "pfs/topology.hpp"
#include "sim/engine.hpp"
#include "util/file.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace stellar;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ------------------------------------------------- scheduler microbench --

// A self-rescheduling event: the queue depth stays constant while events
// churn through it, which is the regime that separates O(log n) heap pops
// from the calendar queue's O(1) buckets.
struct Churn {
  sim::SimEngine& engine;
  util::Rng rng;
  std::uint64_t remaining;

  void fire() {
    if (remaining == 0) {
      return;
    }
    --remaining;
    engine.scheduleAfter(rng.uniform(0.0, 1.0), [this] { fire(); });
  }
};

double schedulerEventsPerSec(sim::SchedulerKind kind, std::uint64_t rounds) {
  sim::SimEngine engine{sim::EngineOptions{.seed = 7, .scheduler = kind}};
  constexpr std::uint64_t kPending = 50'000;
  std::vector<std::unique_ptr<Churn>> churners;
  churners.reserve(kPending);
  util::Rng seeder{0xBE9C4ULL};
  for (std::uint64_t i = 0; i < kPending; ++i) {
    churners.push_back(
        std::make_unique<Churn>(Churn{engine, util::Rng{seeder.next()}, rounds}));
    Churn* churn = churners.back().get();
    engine.scheduleAt(churn->rng.uniform(0.0, 1.0), [churn] { churn->fire(); });
  }
  const auto start = Clock::now();
  (void)engine.run();
  const double elapsed = secondsSince(start);
  return static_cast<double>(engine.eventsProcessed()) / elapsed;
}

// --------------------------------------------------------- scale points --

// File-per-process job: create, `chunks` sequential 1 MiB writes, fsync,
// close. Fsync forces server-side writeout inside the measured window, and
// private files keep the job partitionable into federation cells. The SAME
// per-rank program runs at every scale point so per-event costs compare a
// fixed workload mix; 1 MiB chunks keep the mix data-RPC-heavy.
pfs::JobSpec fppJob(std::uint32_t ranks, std::uint32_t chunks) {
  constexpr std::uint64_t kChunkBytes = util::kMiB;
  pfs::JobSpec job;
  job.name = "micro_engine_fpp";
  job.ranks.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto f = job.addFile("/bench/rank" + std::to_string(r));
    auto& prog = job.ranks[r];
    prog.reserve(std::size_t{chunks} + 3);
    prog.push_back(pfs::IoOp::create(f));
    for (std::uint32_t i = 0; i < chunks; ++i) {
      prog.push_back(pfs::IoOp::write(f, std::uint64_t{i} * kChunkBytes, kChunkBytes));
    }
    prog.push_back(pfs::IoOp::fsync(f));
    prog.push_back(pfs::IoOp::close(f));
  }
  return job;
}

struct ScalePoint {
  std::string label;
  std::uint32_t osts = 0;
  std::uint32_t ranks = 0;
  double wallSeconds = 0.0;  // host wall clock per run, averaged over repeats
  std::uint64_t events = 0;  // per run
  double usPerEvent = 0.0;
};

// Repeats are sized so every point accumulates a comparable total duration:
// a single 1x run is ~10x shorter than a 10x run, and on shared/throttled
// hosts short runs make per-event figures a lottery. Averaging totals over
// a few seconds lets CPU-frequency wander cancel out.
ScalePoint runScalePoint(const std::string& label, pfs::ClusterSpec cluster,
                         const sim::EngineOptions& engine, std::uint32_t chunks,
                         int repeats) {
  ScalePoint point;
  point.label = label;
  point.osts = cluster.totalOsts();
  point.ranks = cluster.totalRanks();
  const pfs::JobSpec job = fppJob(point.ranks, chunks);
  pfs::PfsSimulator sim{{.cluster = std::move(cluster), .engine = engine}};
  double totalSeconds = 0.0;
  for (int i = 0; i < repeats; ++i) {
    const auto start = Clock::now();
    const pfs::RunResult result = sim.run(job, pfs::PfsConfig{}, 17);
    totalSeconds += secondsSince(start);
    point.events = result.counters.events;
  }
  point.wallSeconds = totalSeconds / repeats;
  point.usPerEvent =
      1e6 * point.wallSeconds / static_cast<double>(point.events);
  std::printf(
      "  %-5s %6u OSTs %7u ranks  %7.2fs wall  %9llu events  %5.2f us/event (x%d)\n",
      label.c_str(), point.osts, point.ranks, point.wallSeconds,
      static_cast<unsigned long long>(point.events), point.usPerEvent, repeats);
  return point;
}

// ------------------------------------------------------------- baseline --

// Regression check against a committed BENCH_engine.json: ratio metrics
// are machine-independent enough to gate on (absolute events/sec is not).
bool checkBaseline(const std::string& path, double perEventRatio,
                   double calendarOverHeap) {
  util::Json doc;
  try {
    doc = util::Json::parse(util::readFile(path));
  } catch (const std::exception& e) {
    std::printf("FAIL: cannot read baseline %s: %s\n", path.c_str(), e.what());
    return false;
  }
  // Both ratios swing up to ~50% run to run (shared-machine load, and quick
  // mode measures the deep-queue arms with fewer rounds than the full run
  // that produced the committed baseline), so each threshold pairs a wide
  // relative tolerance with an absolute floor/ceiling. The regressions this
  // is meant to catch are not subtle: the calendar-queue linear-scan
  // degeneracy was ~30x, losing shard cache locality ~3-4x.
  bool ok = true;
  for (const util::Json& row : doc.asArray()) {
    const std::string metric = row.at("metric").asString();
    const double value = row.at("value").asNumber();
    if (metric == "scale10x_per_event_ratio" &&
        perEventRatio > std::max(value * 1.5, 1.2)) {
      std::printf("FAIL: scale10x_per_event_ratio regressed: %.3f -> %.3f "
                  "(limit max(1.5x baseline, 1.2))\n",
                  value, perEventRatio);
      ok = false;
    }
    if (metric == "calendar_over_heap_deep_queue" &&
        calendarOverHeap < std::min(value * 0.70, 0.95)) {
      std::printf("FAIL: calendar_over_heap_deep_queue regressed: "
                  "%.3f -> %.3f (limit min(0.7x baseline, 0.95))\n",
                  value, calendarOverHeap);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline = argv[i] + 11;
    } else {
      std::printf("usage: %s [--quick] [--baseline=BENCH_engine.json]\n", argv[0]);
      return 2;
    }
  }

  std::printf("micro_engine: calendar-queue + sharded-engine scale gate%s\n",
              quick ? " (quick)" : "");
  bool ok = true;

  // Part 1: deep-queue scheduler throughput.
  const std::uint64_t rounds = quick ? 20 : 40;
  std::printf("deep-queue scheduler microbench (50k pending, %lluk events):\n",
              static_cast<unsigned long long>(50 * (rounds + 1)));
  const double heapEps = schedulerEventsPerSec(sim::SchedulerKind::Heap, rounds);
  const double calendarEps =
      schedulerEventsPerSec(sim::SchedulerKind::Calendar, rounds);
  const double calendarOverHeap = calendarEps / heapEps;
  std::printf("  heap     %6.2f Mev/s\n  calendar %6.2f Mev/s  (%.2fx heap)\n",
              heapEps / 1e6, calendarEps / 1e6, calendarOverHeap);
  if (calendarOverHeap < 0.9) {
    std::printf("FAIL: calendar queue below 0.9x heap throughput (%.2fx)\n",
                calendarOverHeap);
    ok = false;
  }

  // Part 2: the 10x-cluster-size gate (see file header for why the gated
  // quantity is per-event wall cost rather than raw wall time).
  const std::uint32_t chunks = 4;
  const int repeats1x = quick ? 8 : 16;
  const int repeats10x = quick ? 2 : 3;

  // One shard per federation cell: each cell's queue drains to completion
  // with a hot cache instead of 1000 cells' state thrashing through one
  // interleaved queue, and worker threads (capped at the core count by
  // ShardedEngine) pick shards off the pool. Cells are shallow, so a small
  // per-shard arena first block avoids 1000 x 64 KiB of idle reservation.
  std::printf("scale points (identical per-rank programs, one shard per cell):\n");
  pfs::ClusterSpec mono = pfs::scaledCluster(100);
  mono.cells = 1;  // the old engine's world: one monolithic event queue
  const ScalePoint base =
      runScalePoint("1x", std::move(mono),
                    sim::EngineOptions{.scheduler = sim::SchedulerKind::Heap},
                    chunks, repeats1x);
  const ScalePoint big = runScalePoint(
      "10x", pfs::scaledCluster(1000),
      sim::EngineOptions{.scheduler = sim::SchedulerKind::Calendar,
                         .arenaBytes = 8 * 1024,
                         .shards = 1000},
      chunks, repeats10x);

  const double perEventRatio = big.usPerEvent / base.usPerEvent;
  const double wallRatio = big.wallSeconds / base.wallSeconds;
  std::printf("  10x/1x per-event cost ratio: %.3f (gate: < 2.0)\n", perEventRatio);
  std::printf("  10x/1x wall ratio: %.3f (informational; 10x the events on %u cores)\n",
              wallRatio, std::thread::hardware_concurrency());
  if (big.osts < base.osts * 10 || big.ranks < base.ranks * 10 ||
      big.events < base.events * 10) {
    std::printf("FAIL: 10x point is not 10x the simulated cluster and work\n");
    ok = false;
  }
  if (perEventRatio >= 2.0) {
    std::printf("FAIL: per-event cost grew %.2fx at 10x scale (gate < 2.0x)\n",
                perEventRatio);
    ok = false;
  }
  // With >= 4 cores the shard pool absorbs the 10x event volume, so the
  // headline wall-clock claim is directly checkable.
  if (std::thread::hardware_concurrency() >= 4 && wallRatio >= 2.0) {
    std::printf("FAIL: 10x cluster cost %.2fx wall time on %u cores (gate < 2.0x)\n",
                wallRatio, std::thread::hardware_concurrency());
    ok = false;
  }

  // Part 3: informational 100x point (full mode only; no gate).
  double usPerEvent100x = 0.0;
  if (!quick) {
    const ScalePoint huge = runScalePoint(
        "100x", pfs::scaledCluster(10000),
        sim::EngineOptions{.scheduler = sim::SchedulerKind::Calendar,
                           .arenaBytes = 8 * 1024,
                           .shards = 10000},
        chunks, 1);
    usPerEvent100x = huge.usPerEvent;
  }

  if (!baseline.empty() && !checkBaseline(baseline, perEventRatio, calendarOverHeap)) {
    ok = false;
  }

  util::Json doc = util::Json::makeArray();
  const auto row = [&doc](const std::string& metric, double value) {
    util::Json r = util::Json::makeObject();
    r.set("name", "micro_engine");
    r.set("metric", metric);
    r.set("value", value);
    doc.push(std::move(r));
  };
  row("heap_deep_queue_events_per_sec", heapEps);
  row("calendar_deep_queue_events_per_sec", calendarEps);
  row("calendar_over_heap_deep_queue", calendarOverHeap);
  row("scale1x_wall_seconds", base.wallSeconds);
  row("scale1x_events", static_cast<double>(base.events));
  row("scale1x_us_per_event", base.usPerEvent);
  row("scale10x_wall_seconds", big.wallSeconds);
  row("scale10x_events", static_cast<double>(big.events));
  row("scale10x_us_per_event", big.usPerEvent);
  row("scale10x_per_event_ratio", perEventRatio);
  row("scale10x_wall_ratio", wallRatio);
  if (usPerEvent100x > 0.0) {
    row("scale100x_us_per_event", usPerEvent100x);
  }
  util::writeFile("BENCH_engine.json", doc.dump(2) + "\n");
  std::printf("wrote BENCH_engine.json\n");

  std::printf("%s\n", ok ? "micro_engine gate PASSED" : "micro_engine gate FAILED");
  return ok ? 0 : 1;
}

// Fig. 8: component ablations on MDWorkbench_8K — full STELLAR vs
// No Descriptions (RAG parameter descriptions removed, ranges kept) vs
// No Analysis (Analysis Agent removed entirely).
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"
#include "util/units.hpp"

using namespace stellar;

int main() {
  bench::printHeader("Component ablations on MDWorkbench_8K", "Figure 8");

  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("MDWorkbench_8K", bench::benchOptions());

  struct Mode {
    const char* name;
    bool useDescriptions;
    bool useAnalysis;
  };
  const Mode modes[] = {
      {"full STELLAR", true, true},
      {"No Descriptions", false, true},
      {"No Analysis", true, false},
  };

  const core::RepeatedMeasure def = core::measureConfig(sim, job, pfs::PfsConfig{}, {.repeats = 8, .seedBase = 50});

  util::Table table{{"variant", "best wall time (s)", "speedup vs default",
                     "attempts", "invalid attempts"}};
  table.addRow({"default config", bench::meanCi(def.summary.mean, def.summary.ci90),
                "1.00x", "-", "-"});
  for (const Mode& mode : modes) {
    core::StellarOptions options;
    options.seed = 42;
    options.agent.useDescriptions = mode.useDescriptions;
    options.agent.useAnalysis = mode.useAnalysis;
    const core::TuningEvaluation eval = core::evaluateTuning(sim, options, job, {.repeats = 8});
    const util::Summary best = eval.bestSummary();
    double invalid = 0;
    for (const core::TuningRunResult& run : eval.runs) {
      for (const agents::Attempt& attempt : run.attempts) {
        invalid += attempt.valid ? 0 : 1;
      }
    }
    table.addRow({mode.name, bench::meanCi(best.mean, best.ci90),
                  bench::fmt(def.summary.mean / best.mean) + "x",
                  bench::fmt(eval.meanAttempts(), 1),
                  bench::fmt(invalid / static_cast<double>(eval.runs.size()), 2)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape (paper): both ablations collapse toward default-level\n"
      "performance — without descriptions the agent reasons from hallucinated\n"
      "semantics (e.g. widening stripes \"to distribute small files\"), and\n"
      "without analysis it applies large-file heuristics to a metadata\n"
      "workload.\n");
  return 0;
}

// §5.7 cost and latency analysis: token usage per tuning run for the
// Tuning Agent and the Analysis Agent, prompt-cache hit rates, estimated
// API cost, and inference latency relative to application runtime.
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader("Token usage, cache hit rate, cost and latency per tuning run",
                     "Section 5.7");

  pfs::PfsSimulator sim;
  const auto opt = bench::benchOptions();

  // A populated rule set enlarges the static prompt prefix, which is what
  // drives the high cache-hit rates the paper reports; accumulate one
  // first.
  rules::RuleSet global;
  for (const std::string& name : workloads::benchmarkNames()) {
    core::StellarOptions options;
    options.seed = 7;
    options.agent.seed = 7;
    core::StellarEngine engine{sim, options};
    (void)engine.tune(workloads::byName(name, opt), &global);
  }

  util::Table table{{"agent / model", "calls", "input tok", "cached %", "output tok",
                     "est. cost (USD)", "inference latency (s)"}};

  double appSeconds = 0.0;
  for (const std::string& name : {std::string{"MDWorkbench_8K"}, std::string{"IOR_16M"}}) {
    const pfs::JobSpec job = workloads::byName(name, opt);
    core::StellarOptions options;
    options.seed = 42;
    options.agent.seed = 42;
    core::StellarEngine engine{sim, options};
    rules::RuleSet copy = global;
    const core::TuningRunResult run = engine.tune(job, &copy);

    for (double s : run.iterationSeconds) {
      appSeconds += s;
    }

    const llm::UsageTotals tuning = run.meter.totals("tuning-agent");
    const llm::UsageTotals analysis = run.meter.totals("analysis-agent");
    const llm::ModelProfile tuningModel = options.agent.model;
    const llm::ModelProfile analysisModel = options.analysisModel;

    table.addRow({name + ": tuning (" + tuningModel.name + ")",
                  std::to_string(tuning.calls), std::to_string(tuning.inputTokens),
                  bench::fmt(tuning.cacheHitRate() * 100, 1),
                  std::to_string(tuning.outputTokens),
                  bench::fmt(run.meter.estimateCostUsd(tuningModel, "tuning-agent"), 4),
                  bench::fmt(run.meter.estimateLatencySeconds(tuningModel, "tuning-agent"),
                             1)});
    table.addRow({name + ": analysis (" + analysisModel.name + ")",
                  std::to_string(analysis.calls), std::to_string(analysis.inputTokens),
                  bench::fmt(analysis.cacheHitRate() * 100, 1),
                  std::to_string(analysis.outputTokens),
                  bench::fmt(run.meter.estimateCostUsd(analysisModel, "analysis-agent"), 4),
                  bench::fmt(
                      run.meter.estimateLatencySeconds(analysisModel, "analysis-agent"),
                      1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Application execution time across these runs: %.1f s (simulated).\n"
      "Expected shape (paper): most input tokens resolve from the prompt\n"
      "cache across a tuning run, and inference latency is negligible next\n"
      "to application runtime.\n",
      appSeconds);
  return 0;
}

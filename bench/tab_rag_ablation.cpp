// Design-choice ablation (DESIGN.md): sensitivity of the offline
// extraction to the RAG chunking configuration and retrieval depth. The
// paper fixes LlamaIndex defaults (1024-token chunks, 20 overlap, top-20);
// this harness shows why those are comfortable choices and where the
// pipeline degrades.
#include <cstdio>

#include "common.hpp"
#include "core/offline_extractor.hpp"
#include "util/table.hpp"

using namespace stellar;

int main() {
  bench::printHeader("Extraction quality vs RAG chunking / retrieval depth",
                     "DESIGN.md ablation (paper §4.2 uses 1024/20, top-20)");

  manual::SystemFacts facts;

  util::Table table{{"chunk tokens", "overlap", "top-K", "chunks", "precision",
                     "recall"}};
  struct Case {
    std::size_t chunkTokens;
    std::size_t overlap;
    std::size_t topK;
  };
  const Case cases[] = {
      {128, 20, 20}, {256, 20, 20},  {512, 20, 20},   {1024, 20, 20},
      {2048, 20, 20}, {1024, 0, 20}, {1024, 200, 20}, {1024, 20, 1},
      {1024, 20, 3},  {1024, 20, 50},
  };
  for (const Case& c : cases) {
    core::ExtractorOptions options;
    options.chunkTokens = c.chunkTokens;
    options.overlapTokens = c.overlap;
    options.topK = c.topK;
    const core::ExtractionResult result = core::OfflineExtractor{options}.run(facts);
    table.addRow({std::to_string(c.chunkTokens), std::to_string(c.overlap),
                  std::to_string(c.topK), std::to_string(result.chunksIndexed),
                  bench::fmt(result.precision()), bench::fmt(result.recall())});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape: recall collapses when retrieval depth is starved\n"
      "(top-1) or when chunks are too small to hold a full parameter\n"
      "section; the paper's defaults sit on the robust plateau.\n");
  return 0;
}

// warm_start — convergence benefit of the cross-run experience store.
//
// Phase 1 (population): cold-tune IOR_64K for five seeds, filing each
// run's experience into a store.
// Phase 2 (evaluation): for five *fresh* seeds, tune the same workload
// twice — cold (no store) and warm (store recall primes the first
// attempt) — and count the iterations each needs to get within 5% of the
// cold run's best time.
// Phase 3 (dissimilar control): a metadata-heavy workload the store has
// never seen must not recall anything, and its result must be identical
// to a cold run (recall must never degrade quality on dissimilar work).
//
// Gate (exit non-zero on breach):
//   - median warm iterations-to-within-5% strictly below the cold median
//   - median warm best within 5% of the cold best
//   - dissimilar control: no recall, byte-identical best to cold
//
// Emits BENCH_warm_start.json (rows: name, metric, value, seed) in the
// current directory — run from the repo root to refresh the checked-in copy.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/experience_store.hpp"
#include "pfs/simulator.hpp"
#include "util/file.hpp"
#include "util/json.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace stellar;

// IO500's mixed phases make the agent's first cold hypothesis weak (it
// needs 2-3 iterations to converge), so warm-start benefit is visible;
// the metadata-heavy control workload must never match IO500 experiences.
constexpr const char* kWorkload = "IO500";
constexpr const char* kDissimilar = "MDWorkbench_8K";
constexpr double kScale = 0.05;
constexpr double kTolerance = 0.05;

core::TuningRunResult tuneOnce(const std::string& workload, std::uint64_t seed,
                               core::WarmStartProvider* provider) {
  pfs::PfsSimulator simulator;
  core::StellarOptions options;
  options.seed = seed;
  options.agent.seed = seed;
  options.warmStart = provider;
  core::StellarEngine engine{simulator, options};
  return engine.tune(
      workloads::byName(workload, {.ranks = 50, .scale = kScale, .seed = seed}));
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

struct Row {
  std::string metric;
  double value = 0.0;
  std::uint64_t seed = 0;
};

}  // namespace

int main() {
  std::vector<Row> rows;
  bool ok = true;

  // Phase 1: population.
  exp::ExperienceStore store{"", {}};
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const core::TuningRunResult run = tuneOnce(kWorkload, seed, nullptr);
    (void)store.append(exp::recordFromRun(run, seed, "claude-3.7-sonnet", ""));
  }
  std::printf("populated store with %zu cold experiences on %s\n", store.size(),
              kWorkload);

  // Phase 2: cold vs warm on fresh seeds.
  std::vector<double> coldIters;
  std::vector<double> warmIters;
  std::vector<double> bestRatios;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL, 15ULL}) {
    const core::TuningRunResult cold = tuneOnce(kWorkload, seed, nullptr);
    const core::TuningRunResult warm = tuneOnce(kWorkload, seed, &store);
    const double target = cold.bestSeconds;
    const double coldN =
        static_cast<double>(cold.iterationsToWithin(kTolerance, target));
    const double warmN =
        static_cast<double>(warm.iterationsToWithin(kTolerance, target));
    const double ratio = warm.bestSeconds / cold.bestSeconds;
    coldIters.push_back(coldN);
    warmIters.push_back(warmN);
    bestRatios.push_back(ratio);
    rows.push_back({"cold_iterations_to_within_5pct", coldN, seed});
    rows.push_back({"warm_iterations_to_within_5pct", warmN, seed});
    rows.push_back({"warm_over_cold_best_ratio", ratio, seed});
    std::printf("seed %llu: cold %.0f iters, warm %.0f iters (recalled=%d, "
                "best ratio %.3f)\n",
                static_cast<unsigned long long>(seed), coldN, warmN,
                warm.warmStarted ? 1 : 0, ratio);
    if (!warm.warmStarted) {
      std::printf("FAIL: warm run for seed %llu recalled nothing\n",
                  static_cast<unsigned long long>(seed));
      ok = false;
    }
  }
  const double coldMedian = median(coldIters);
  const double warmMedian = median(warmIters);
  const double ratioMedian = median(bestRatios);
  rows.push_back({"cold_median_iterations", coldMedian, 0});
  rows.push_back({"warm_median_iterations", warmMedian, 0});
  rows.push_back({"median_best_ratio", ratioMedian, 0});
  std::printf("median iterations to within 5%% of cold best: cold %.1f, warm %.1f\n",
              coldMedian, warmMedian);
  if (!(warmMedian < coldMedian)) {
    std::printf("FAIL: warm median (%.1f) not strictly below cold median (%.1f)\n",
                warmMedian, coldMedian);
    ok = false;
  }
  if (!(ratioMedian <= 1.0 + kTolerance)) {
    std::printf("FAIL: warm best (median ratio %.3f) outside 5%% of cold best\n",
                ratioMedian);
    ok = false;
  }

  // Phase 3: dissimilar workload must not recall and must not degrade.
  {
    const std::uint64_t seed = 21;
    const core::TuningRunResult cold = tuneOnce(kDissimilar, seed, nullptr);
    const core::TuningRunResult warm = tuneOnce(kDissimilar, seed, &store);
    rows.push_back({"dissimilar_recalled", warm.warmStarted ? 1.0 : 0.0, seed});
    rows.push_back({"dissimilar_best_ratio", warm.bestSeconds / cold.bestSeconds,
                    seed});
    std::printf("dissimilar %s: recalled=%d, cold best %.3fs, warm best %.3fs\n",
                kDissimilar, warm.warmStarted ? 1 : 0, cold.bestSeconds,
                warm.bestSeconds);
    if (warm.warmStarted) {
      std::printf("FAIL: store recalled %s experience for %s\n", kWorkload,
                  kDissimilar);
      ok = false;
    }
    if (warm.bestSeconds != cold.bestSeconds) {
      std::printf("FAIL: dissimilar warm run diverged from cold (quality "
                  "degradation: %.6f vs %.6f)\n",
                  warm.bestSeconds, cold.bestSeconds);
      ok = false;
    }
  }

  util::Json doc = util::Json::makeArray();
  for (const Row& row : rows) {
    util::Json r = util::Json::makeObject();
    r.set("name", "warm_start");
    r.set("metric", row.metric);
    r.set("value", row.value);
    r.set("seed", static_cast<std::int64_t>(row.seed));
    doc.push(std::move(r));
  }
  util::writeFile("BENCH_warm_start.json", doc.dump(2) + "\n");
  std::printf("wrote BENCH_warm_start.json (%zu rows)\n", rows.size());

  std::printf("%s\n", ok ? "warm_start gate PASSED" : "warm_start gate FAILED");
  return ok ? 0 : 1;
}

// Fig. 6: per-iteration speedup over the default with and without the
// global Rule Set on the five benchmark workloads (interpolation: the
// rules were learned on these same benchmarks).
//
// Protocol mirrors §5.3.1: first tune every benchmark with no rule set,
// accumulating/merging rules after each run; then tune them again with the
// accumulated global Rule Set in the initial context.
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader("Per-iteration speedup with vs without the global Rule Set",
                     "Figure 6");

  pfs::PfsSimulator sim;
  const auto opt = bench::benchOptions();

  // --- pass 1: accumulate rules across the benchmark suite ----------------
  rules::RuleSet global;
  for (const std::string& name : workloads::benchmarkNames()) {
    const pfs::JobSpec job = workloads::byName(name, opt);
    core::StellarOptions options;
    options.seed = 7;
    options.agent.seed = 7;
    core::StellarEngine engine{sim, options};
    (void)engine.tune(job, &global);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\naccumulated global rule set: %zu rules\n\n", global.size());

  // --- pass 2: evaluate per-iteration speedups with/without ---------------
  for (const std::string& name : workloads::benchmarkNames()) {
    const pfs::JobSpec job = workloads::byName(name, opt);
    core::StellarOptions options;
    options.seed = 42;

    const core::TuningEvaluation without = core::evaluateTuning(sim, options, job, {.repeats = 8});
    const core::TuningEvaluation with =
        core::evaluateTuning(sim, options, job, {.repeats = 8, .globalRules = &global});

    const auto seriesW = without.meanIterationSpeedups();
    const auto seriesR = with.meanIterationSpeedups();
    std::printf("--- %s ---\n", name.c_str());
    util::Table table{{"iteration", "no rule set (speedup)", "with rule set (speedup)"}};
    const std::size_t n = std::max(seriesW.size(), seriesR.size());
    for (std::size_t k = 0; k < n; ++k) {
      table.addRow({std::to_string(k),
                    k < seriesW.size() ? bench::fmt(seriesW[k]) + "x" : "",
                    k < seriesR.size() ? bench::fmt(seriesR[k]) + "x" : ""});
    }
    table.addRow({"attempts", bench::fmt(without.meanAttempts(), 1),
                  bench::fmt(with.meanAttempts(), 1)});
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "Expected shape (paper): the rule set lifts the first guess close to\n"
      "the final speedup and shortens (or matches) the number of attempts.\n");
  return 0;
}

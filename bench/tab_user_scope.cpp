// §5.6 future-work mode: tuning with only user-accessible parameters
// (per-file layout via lfs setstripe — no root) versus the paper's
// system-wide setting. Quantifies how much of the win survives the
// production deployment constraint, and where root-only knobs are
// irreplaceable (metadata workloads).
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader(
      "System-wide vs user-accessible tuning scope (speedup over default)",
      "Section 5.6 (future-work deployment modes)");

  pfs::PfsSimulator sim;
  const auto opt = bench::benchOptions();

  util::Table table{{"workload", "system-wide speedup", "user-accessible speedup",
                     "share of win retained"}};
  for (const std::string& name : {std::string{"IOR_16M"}, std::string{"IOR_64K"},
                                  std::string{"MDWorkbench_8K"},
                                  std::string{"MACSio_16M"}}) {
    const pfs::JobSpec job = workloads::byName(name, opt);

    core::StellarOptions systemWide;
    systemWide.seed = 42;
    const core::TuningEvaluation full = core::evaluateTuning(sim, systemWide, job, {.repeats = 8});

    core::StellarOptions userOnly = systemWide;
    userOnly.scope = core::TuningScope::UserAccessible;
    const core::TuningEvaluation user = core::evaluateTuning(sim, userOnly, job, {.repeats = 8});

    const double defaultMean = full.defaultSummary().mean;
    const double fullSpeedup = defaultMean / full.bestSummary().mean;
    const double userSpeedup = user.defaultSummary().mean / user.bestSummary().mean;
    const double retained = fullSpeedup > 1.0
                                ? (userSpeedup - 1.0) / (fullSpeedup - 1.0)
                                : 0.0;
    table.addRow({name, bench::fmt(fullSpeedup) + "x", bench::fmt(userSpeedup) + "x",
                  bench::fmt(retained * 100, 0) + "%"});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape: layout-only tuning captures much of the bandwidth win\n"
      "for large shared-file I/O, but metadata-bound workloads need the\n"
      "root-only client knobs (lock LRU, statahead, RPC caps) — the hybrid\n"
      "deployment argument of §5.6.\n");
  return 0;
}

// The iteration-cost comparison behind §1/§3: traditional black-box
// autotuners need tens to hundreds of full application executions to reach
// what STELLAR reaches within five attempts. Every objective evaluation is
// one complete (simulated) application run — exactly the cost the paper
// argues is prohibitive on production systems.
#include <cstdio>

#include "baselines/expert.hpp"
#include "baselines/oracle.hpp"
#include "common.hpp"
#include "core/harness.hpp"
#include "opt/optimizers.hpp"

using namespace stellar;

int main() {
  bench::printHeader(
      "Executions needed to reach near-optimal (within 10% of the expert reference)",
      "Sections 1/3 iteration-cost claim");

  pfs::PfsSimulator sim;
  auto opt = bench::benchOptions();
  // A reduced scale keeps the hundreds of baseline evaluations tractable;
  // the search landscape shape is scale-invariant.
  opt.scale = std::min(opt.scale, 0.05);

  util::Table table{{"workload", "target (s)", "method", "best (s)",
                     "execs to within 10%", "execs used"}};

  for (const std::string& name : {std::string{"IOR_16M"}, std::string{"MDWorkbench_8K"}}) {
    const pfs::JobSpec job = workloads::byName(name, opt);

    // The paper's near-optimal reference is expert tuning (§5: "consistently
    // achieve near-optimal performance (compared with expert tuning)").
    // Coordinate descent seeded from the expert config refines it into the
    // oracle row shown for context.
    const core::RepeatedMeasure expert =
        core::measureConfig(sim, job, baselines::expertConfig(name), {.repeats = 8, .seedBase = 700});
    const double target = expert.summary.mean;

    baselines::OracleOptions oracleOpts;
    oracleOpts.maxSweeps = 2;
    oracleOpts.candidatesPerParam = 5;
    oracleOpts.start = baselines::expertConfig(name);
    const baselines::OracleResult oracle = baselines::oracleSearch(sim, job, oracleOpts);
    std::printf(".");
    std::fflush(stdout);

    std::size_t evals = 0;
    const opt::Objective objective = [&](const pfs::PfsConfig& config) {
      return sim.run(job, config, util::mix64(555, evals++)).wallSeconds;
    };
    const opt::SearchSpace space{sim.boundsContext()};
    opt::OptOptions optOpts;
    optOpts.maxEvaluations = 150;

    struct Method {
      const char* name;
      opt::OptResult result;
    };
    std::vector<Method> methods;
    evals = 0;
    methods.push_back({"random search", opt::randomSearch(space, objective, optOpts)});
    evals = 0;
    methods.push_back(
        {"simulated annealing", opt::simulatedAnnealing(space, objective, optOpts)});
    evals = 0;
    methods.push_back(
        {"bayesian opt (GP+EI)", opt::bayesianOptimize(space, objective, optOpts)});
    evals = 0;
    methods.push_back(
        {"heuristic controller", opt::heuristicController(space, objective, optOpts)});
    std::printf(".");
    std::fflush(stdout);

    // STELLAR: executions = initial run + attempts.
    core::StellarOptions stellarOpts;
    stellarOpts.seed = 42;
    const core::TuningEvaluation eval = core::evaluateTuning(sim, stellarOpts, job, {.repeats = 8});

    table.addRow({name, bench::fmt(target), "expert (the paper's reference)",
                  bench::fmt(target), "-", "-"});
    table.addRow({name, "", "oracle (coord. descent from expert)",
                  bench::fmt(oracle.seconds), "-", std::to_string(oracle.evaluations)});
    for (const Method& m : methods) {
      const std::size_t reach = m.result.evaluationsToReach(target, 1.10);
      table.addRow({name, "", m.name, bench::fmt(m.result.bestSeconds),
                    reach == 0 ? "not reached" : std::to_string(reach),
                    std::to_string(m.result.history.size())});
    }
    double stellarExecs = 0.0;
    double withinCount = 0.0;
    for (const core::TuningRunResult& run : eval.runs) {
      stellarExecs += 1.0 + static_cast<double>(run.attempts.size());
      withinCount += run.bestSeconds <= target * 1.10 ? 1.0 : 0.0;
    }
    table.addRow({name, "", "STELLAR", bench::fmt(eval.bestSummary().mean),
                  bench::fmt(stellarExecs / static_cast<double>(eval.runs.size()), 1) +
                      " (in band in " +
                      bench::fmt(100.0 * withinCount / eval.runs.size(), 0) +
                      "% of runs)",
                  bench::fmt(stellarExecs / static_cast<double>(eval.runs.size()), 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape (paper): the black-box methods need tens to hundreds\n"
      "of full executions (or never reach the band); STELLAR spends a\n"
      "single-digit number.\n");
  return 0;
}

// Shared plumbing for the figure/table harnesses: every binary regenerates
// one table or figure from the paper's evaluation section, printing the
// same rows/series the paper plots. Volume scale comes from STELLAR_SCALE
// (default 0.2; 1.0 = the paper's full workload sizes).
#pragma once

#include <cstdio>
#include <string>

#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

namespace stellar::bench {

inline workloads::WorkloadOptions benchOptions() {
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = workloads::benchScale();
  return opt;
}

inline void printHeader(const std::string& title, const std::string& paperRef) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s; STELLAR_SCALE=%s)\n", paperRef.c_str(),
              util::formatDouble(workloads::benchScale(), 2).c_str());
  std::printf("================================================================\n");
}

inline std::string fmt(double v, int decimals = 2) {
  return util::formatDouble(v, decimals);
}

/// "12.34 ± 0.56" mean/CI cell.
inline std::string meanCi(double mean, double ci, int decimals = 2) {
  return fmt(mean, decimals) + " ± " + fmt(ci, decimals);
}

}  // namespace stellar::bench

// llm_resilience — end-to-end tuning resilience under the canned LLM fault
// scenarios (src/faults). Each scenario runs the full STELLAR loop on the
// same workload with the Enforce sanitizer, and the bench reports, per
// scenario:
//
//   - default vs tuned wall time and the quality ratio against the clean
//     (fault-free) session
//   - the resilience-ladder rung the session ended on
//   - LLM failure machinery counters (failed calls, wasted attempts,
//     breaker trips, sanitizer clamps/rejects)
//
// Gates:
//   1. every scenario's session completes with a real measurement
//   2. bounded quality degradation: no faulted session's best wall time is
//      worse than kQualityBound x the clean session's best
//   3. zero out-of-range configs reach PfsSimulator (pfs.sim.config_rejected
//      stays 0 — the Enforce sanitizer is the last agent-side gate)
//   4. the sanitizer demonstrably engages under flaky-llm (clamped or
//      rejected moves > 0, from its bad-knob/bad-value content faults)
//
// Emits BENCH_llm_resilience.json (rows: name, metric, value).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "faults/fault_plan.hpp"
#include "obs/counters.hpp"
#include "pfs/simulator.hpp"
#include "util/file.hpp"
#include "util/json.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace stellar;

// The faulted sessions may fall back to coarser rungs (rule baseline /
// safe default), which legitimately tune less well than the full agent
// loop. The bound keeps that degradation honest: even a total LLM outage
// must stay within 2x of the clean session's best wall time (measured
// headroom: worst rung lands within ~1.15x on the bench workload).
constexpr double kQualityBound = 2.0;

struct ScenarioRow {
  std::string name;
  double defaultSeconds = 0.0;
  double bestSeconds = 0.0;
  double speedup = 0.0;
  std::string rung;
  std::uint64_t failedCalls = 0;
  std::uint64_t wastedAttempts = 0;
  std::uint64_t breakerTrips = 0;
  std::uint64_t clampedValues = 0;
  std::uint64_t rejectedMoves = 0;
  std::uint64_t staleAnalyses = 0;
  double simRejected = 0.0;
  bool completed = false;
};

// Ladder depth for the JSON rows: deeper = more degraded.
double rungDepth(const std::string& rung) {
  if (rung == "primary") return 0.0;
  if (rung == "fallback-model") return 1.0;
  if (rung == "rule-baseline") return 2.0;
  return 3.0;  // safe-default
}

ScenarioRow runScenario(const std::string& scenario, const std::string& workload) {
  ScenarioRow row;
  row.name = scenario;

  faults::FaultPlan plan;
  if (scenario != "clean") {
    plan = faults::scenarioByName(scenario);
  }
  obs::CounterRegistry registry;
  pfs::PfsSimulator simulator{{.counters = &registry, .faults = &plan}};

  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = 0.05;
  const pfs::JobSpec job = workloads::byName(workload, wopts);

  core::StellarOptions options;
  options.seed = 42;
  options.agent.seed = 42;
  options.sanitizer = agents::SanitizerMode::Enforce;
  core::StellarEngine engine{simulator, options};
  const core::TuningRunResult run = engine.tune(job);

  row.defaultSeconds = run.defaultSeconds;
  row.bestSeconds = run.bestSeconds;
  row.speedup = run.bestSpeedup();
  row.completed = run.defaultSeconds > 0.0 && run.bestSeconds > 0.0;
  row.rung = run.resilienceRung;
  row.failedCalls = run.resilience.llmFailedCalls;
  row.wastedAttempts = run.resilience.llmWastedAttempts;
  row.breakerTrips = run.resilience.breakerTrips;
  row.clampedValues = run.resilience.clampedValues;
  row.rejectedMoves = run.resilience.rejectedMoves;
  row.staleAnalyses = run.resilience.staleAnalyses;
  row.simRejected = registry.counter("pfs.sim.config_rejected").value();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s\n", argv[0]);
      return 0;
    }
  }

  // Same workload everywhere so the quality ratio is apples-to-apples.
  const std::string workload = "IOR_16M";
  const std::vector<std::string> scenarios = {"clean", "flaky-llm", "degrading-llm",
                                              "llm-outage"};

  std::printf("%-14s %10s %10s %8s %-15s %7s %7s %6s %6s %6s %6s %7s\n", "scenario",
              "default_s", "best_s", "speedup", "rung", "failed", "wasted", "trips",
              "clamp", "rejct", "stale", "simrej");

  std::vector<ScenarioRow> rows;
  for (const std::string& scenario : scenarios) {
    ScenarioRow row = runScenario(scenario, workload);
    std::printf("%-14s %10.2f %10.2f %7.2fx %-15s %7llu %7llu %6llu %6llu %6llu "
                "%6llu %7.0f\n",
                row.name.c_str(), row.defaultSeconds, row.bestSeconds, row.speedup,
                row.rung.c_str(), static_cast<unsigned long long>(row.failedCalls),
                static_cast<unsigned long long>(row.wastedAttempts),
                static_cast<unsigned long long>(row.breakerTrips),
                static_cast<unsigned long long>(row.clampedValues),
                static_cast<unsigned long long>(row.rejectedMoves),
                static_cast<unsigned long long>(row.staleAnalyses), row.simRejected);
    rows.push_back(std::move(row));
  }

  const ScenarioRow& clean = rows.front();
  bool ok = true;

  for (const ScenarioRow& row : rows) {
    if (!row.completed) {
      std::printf("FAIL: scenario %s did not complete a session\n", row.name.c_str());
      ok = false;
    }
    if (row.simRejected != 0.0) {
      std::printf("FAIL: scenario %s leaked %.0f out-of-range configs past the "
                  "sanitizer into PfsSimulator\n",
                  row.name.c_str(), row.simRejected);
      ok = false;
    }
    const double qualityRatio =
        clean.bestSeconds > 0.0 ? row.bestSeconds / clean.bestSeconds : 0.0;
    if (qualityRatio > kQualityBound) {
      std::printf("FAIL: scenario %s best %.2fs is %.2fx the clean best %.2fs "
                  "(bound %.1fx)\n",
                  row.name.c_str(), row.bestSeconds, qualityRatio, clean.bestSeconds,
                  kQualityBound);
      ok = false;
    }
  }

  const ScenarioRow* flaky = nullptr;
  for (const ScenarioRow& row : rows) {
    if (row.name == "flaky-llm") {
      flaky = &row;
    }
  }
  if (flaky == nullptr || flaky->clampedValues + flaky->rejectedMoves == 0) {
    std::printf("FAIL: flaky-llm content faults never engaged the sanitizer "
                "(clamped + rejected == 0)\n");
    ok = false;
  }
  if (clean.failedCalls != 0 || clean.wastedAttempts != 0 ||
      clean.rung != "primary") {
    std::printf("FAIL: clean session shows fault machinery activity "
                "(failed=%llu wasted=%llu rung=%s)\n",
                static_cast<unsigned long long>(clean.failedCalls),
                static_cast<unsigned long long>(clean.wastedAttempts),
                clean.rung.c_str());
    ok = false;
  }

  util::Json doc = util::Json::makeArray();
  const auto emit = [&doc](const std::string& metric, double value) {
    util::Json r = util::Json::makeObject();
    r.set("name", "llm_resilience");
    r.set("metric", metric);
    r.set("value", value);
    doc.push(std::move(r));
  };
  for (const ScenarioRow& row : rows) {
    const std::string p = row.name + "_";
    emit(p + "default_seconds", row.defaultSeconds);
    emit(p + "best_seconds", row.bestSeconds);
    emit(p + "speedup", row.speedup);
    emit(p + "quality_ratio_vs_clean",
         clean.bestSeconds > 0.0 ? row.bestSeconds / clean.bestSeconds : 0.0);
    emit(p + "rung_depth", rungDepth(row.rung));
    emit(p + "failed_calls", static_cast<double>(row.failedCalls));
    emit(p + "wasted_attempts", static_cast<double>(row.wastedAttempts));
    emit(p + "breaker_trips", static_cast<double>(row.breakerTrips));
    emit(p + "clamped_values", static_cast<double>(row.clampedValues));
    emit(p + "rejected_moves", static_cast<double>(row.rejectedMoves));
    emit(p + "sim_config_rejected", row.simRejected);
  }
  util::writeFile("BENCH_llm_resilience.json", doc.dump(2) + "\n");
  std::printf("wrote BENCH_llm_resilience.json\n");

  std::printf("gate: sessions complete, quality within %.1fx of clean, zero "
              "out-of-range configs reach the simulator, sanitizer engages "
              "under flaky-llm  ->  %s\n",
              kQualityBound, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// campaign_fleet — fleet-scale campaign orchestration: determinism of the
// parallel runner and resumability of a killed campaign.
//
// Scenario A: a 2x2 campaign (two workloads x two seeds) runs to
// completion in one invocation; the aggregate JSON document is captured.
// Scenario B: the same campaign in a fresh directory is cut off after two
// cells (--max-cells, the deterministic stand-in for a kill), then re-run
// to completion. The re-run must execute only the missing cells, and its
// aggregate document must be byte-identical to scenario A's.
//
// Gate (exit non-zero on breach):
//   - both scenarios complete with 4 cells and a committed store
//   - scenario B's second invocation skips exactly the 2 finished cells
//   - the aggregate JSON documents are byte-identical
//
// Emits BENCH_campaign.json (rows: name, metric, value, seed) in the
// current directory — run from the repo root to refresh the checked-in copy.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace {

using namespace stellar;
namespace fs = std::filesystem;

exp::CampaignSpec benchSpec() {
  exp::CampaignSpec spec;
  spec.name = "bench-fleet";
  spec.workloads = {"IOR_64K", "MDWorkbench_8K"};
  spec.seeds = {7, 8};
  spec.scale = 0.05;
  return spec;
}

struct Row {
  std::string metric;
  double value = 0.0;
};

}  // namespace

int main() {
  const fs::path root = fs::temp_directory_path() / "stellar_campaign_fleet";
  fs::remove_all(root);
  fs::create_directories(root / "a");
  fs::create_directories(root / "b");
  const exp::CampaignSpec spec = benchSpec();
  std::vector<Row> rows;
  bool ok = true;

  // Scenario A: one uninterrupted invocation.
  std::string docA;
  {
    exp::CampaignOptions options;
    options.storePath = (root / "a" / "store.jsonl").string();
    const exp::CampaignResult result = exp::CampaignRunner{options}.run(spec);
    docA = result.aggregateJson(spec).dump(2);
    rows.push_back({"uninterrupted_cells", static_cast<double>(result.cells.size())});
    std::printf("A: %zu cells, executed %zu, complete=%d\n", result.cells.size(),
                result.executed, result.complete ? 1 : 0);
    if (!result.complete || result.cells.size() != 4 || result.executed != 4) {
      std::printf("FAIL: scenario A did not complete all 4 cells\n");
      ok = false;
    }
    exp::ExperienceStore store{options.storePath, {}};
    rows.push_back({"committed_records", static_cast<double>(store.size())});
    if (store.size() != 4) {
      std::printf("FAIL: scenario A committed %zu records, expected 4\n",
                  store.size());
      ok = false;
    }
  }

  // Scenario B: killed after two cells, then resumed.
  std::string docB;
  {
    exp::CampaignOptions options;
    options.storePath = (root / "b" / "store.jsonl").string();
    options.maxCells = 2;
    const exp::CampaignResult partial = exp::CampaignRunner{options}.run(spec);
    std::printf("B(partial): executed %zu, complete=%d\n", partial.executed,
                partial.complete ? 1 : 0);
    if (partial.complete || partial.executed != 2) {
      std::printf("FAIL: partial run should have stopped at 2 cells\n");
      ok = false;
    }

    options.maxCells = 0;
    const exp::CampaignResult resumed = exp::CampaignRunner{options}.run(spec);
    docB = resumed.aggregateJson(spec).dump(2);
    rows.push_back({"resume_skipped_cells", static_cast<double>(resumed.skipped)});
    rows.push_back({"resume_executed_cells", static_cast<double>(resumed.executed)});
    std::printf("B(resume): executed %zu, skipped %zu, complete=%d\n",
                resumed.executed, resumed.skipped, resumed.complete ? 1 : 0);
    if (!resumed.complete || resumed.skipped != 2 || resumed.executed != 2) {
      std::printf("FAIL: resume should skip 2 completed cells and run 2\n");
      ok = false;
    }
    exp::ExperienceStore store{options.storePath, {}};
    if (store.size() != 4) {
      std::printf("FAIL: resumed campaign committed %zu records, expected 4\n",
                  store.size());
      ok = false;
    }
  }

  const bool identical = docA == docB;
  rows.push_back({"aggregate_byte_identical", identical ? 1.0 : 0.0});
  if (!identical) {
    std::printf("FAIL: resumed aggregate differs from uninterrupted aggregate\n");
    ok = false;
  } else {
    std::printf("resumed aggregate is byte-identical (%zu bytes)\n", docA.size());
  }

  util::Json doc = util::Json::makeArray();
  for (const Row& row : rows) {
    util::Json r = util::Json::makeObject();
    r.set("name", "campaign");
    r.set("metric", row.metric);
    r.set("value", row.value);
    r.set("seed", static_cast<std::int64_t>(7));
    doc.push(std::move(r));
  }
  util::writeFile("BENCH_campaign.json", doc.dump(2) + "\n");
  std::printf("wrote BENCH_campaign.json (%zu rows)\n", rows.size());

  fs::remove_all(root);
  std::printf("%s\n", ok ? "campaign gate PASSED" : "campaign gate FAILED");
  return ok ? 0 : 1;
}

// §5.6 scale argument: "larger systems may even facilitate automated
// tuning by exhibiting more pronounced performance responses to parameter
// changes". This harness grows the storage side of the cluster (5 -> 10 ->
// 20 OSTs) and measures how STELLAR's achievable speedup and convergence
// respond. The engine re-derives parameter bounds (stripe_count max, etc.)
// from the cluster automatically — the scale-invariance the paper claims.
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader("Tuning response vs storage-system scale (IOR_16M)",
                     "Section 5.6 scale discussion");

  auto opt = bench::benchOptions();
  opt.scale = std::min(opt.scale, 0.08);
  const pfs::JobSpec job = workloads::byName("IOR_16M", opt);

  util::Table table{{"OSTs", "default (s)", "STELLAR (s)", "speedup", "attempts"}};
  for (const std::uint32_t ossNodes : {5u, 10u, 20u}) {
    pfs::ClusterSpec cluster = pfs::defaultCluster();
    cluster.ossNodes = ossNodes;
    pfs::PfsSimulator sim{{.cluster = cluster}};

    const core::RepeatedMeasure def =
        core::measureConfig(sim, job, pfs::PfsConfig{},
                            {.repeats = 8, .seedBase = 300 + ossNodes});

    core::StellarOptions options;
    options.seed = 42;
    const core::TuningEvaluation eval = core::evaluateTuning(sim, options, job, {.repeats = 8});
    const util::Summary best = eval.bestSummary();
    table.addRow({std::to_string(ossNodes),
                  bench::meanCi(def.summary.mean, def.summary.ci90),
                  bench::meanCi(best.mean, best.ci90),
                  bench::fmt(def.summary.mean / best.mean) + "x",
                  bench::fmt(eval.meanAttempts(), 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape: wider striping headroom on larger storage systems\n"
      "makes the default-vs-tuned gap *larger*, while the attempt count\n"
      "stays flat — the tuning procedure is scale-invariant.\n");
  return 0;
}

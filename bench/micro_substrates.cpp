// google-benchmark microbenchmarks for the substrate layers: event engine,
// service centers, striping math, dataframe/query engine, RAG retrieval,
// JSON, expressions, and whole-simulation throughput.
#include <benchmark/benchmark.h>

#include "core/offline_extractor.hpp"
#include "dfquery/eval.hpp"
#include "manual/manual_text.hpp"
#include "pfs/layout.hpp"
#include "pfs/simulator.hpp"
#include "rag/vector_index.hpp"
#include "sim/engine.hpp"
#include "sim/service_center.hpp"
#include "util/expr.hpp"
#include "util/json.hpp"
#include "workloads/workloads.hpp"

using namespace stellar;

namespace {

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEngine engine;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 10000) {
        engine.scheduleAfter(0.001, [&chain] { chain(); });
      }
    };
    engine.scheduleAt(0.0, [&chain] { chain(); });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventEngine);

void BM_ServiceCenterQueueing(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEngine engine;
    sim::ServiceCenter center{engine, "disk", 16};
    for (int i = 0; i < 5000; ++i) {
      center.submit(0.001, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(center.busyTime());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_ServiceCenterQueueing);

void BM_StripingMath(benchmark::State& state) {
  pfs::FileLayout layout{.stripeCount = 5, .stripeSize = 1 << 20, .firstOst = 2,
                         .totalOsts = 5};
  std::uint64_t offset = 0;
  for (auto _ : state) {
    auto pieces = pfs::mapExtent(layout, offset, 16 << 20);
    benchmark::DoNotOptimize(pieces);
    offset += 12345;
  }
}
BENCHMARK(BM_StripingMath);

void BM_SimulateIor16m(benchmark::State& state) {
  pfs::PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = 0.05;
  const pfs::JobSpec job = workloads::ior16m(opt);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto result = sim.run(job, pfs::PfsConfig{}, ++seed);
    benchmark::DoNotOptimize(result.wallSeconds);
    state.counters["events"] = static_cast<double>(result.counters.events);
  }
}
BENCHMARK(BM_SimulateIor16m)->Unit(benchmark::kMillisecond);

void BM_SimulateMdw(benchmark::State& state) {
  pfs::PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = 0.05;
  const pfs::JobSpec job = workloads::mdworkbench(8192, opt);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto result = sim.run(job, pfs::PfsConfig{}, ++seed);
    benchmark::DoNotOptimize(result.wallSeconds);
    state.counters["events"] = static_cast<double>(result.counters.events);
  }
}
BENCHMARK(BM_SimulateMdw)->Unit(benchmark::kMillisecond);

void BM_DfQueryGroupBy(benchmark::State& state) {
  df::DataFrame frame;
  frame.addColumn("rank", df::ColumnType::Int64);
  frame.addColumn("bytes", df::ColumnType::Int64);
  for (std::int64_t i = 0; i < 10000; ++i) {
    frame.appendRow({i % 50, i * 17});
  }
  const dfq::TableSet tables{{"posix", &frame}};
  for (auto _ : state) {
    auto result = dfq::runQuery(
        "select rank, sum(bytes) from posix where bytes > 100 group by rank "
        "order by sum_bytes desc limit 10",
        tables);
    benchmark::DoNotOptimize(result.rowCount());
  }
}
BENCHMARK(BM_DfQueryGroupBy)->Unit(benchmark::kMicrosecond);

void BM_RagQuery(benchmark::State& state) {
  rag::VectorIndex index;
  index.buildFromDocument(manual::fullManualText());
  for (auto _ : state) {
    auto hits = index.query("How do I use the parameter osc.max_rpcs_in_flight?", 20);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_RagQuery)->Unit(benchmark::kMicrosecond);

void BM_OfflineExtraction(benchmark::State& state) {
  manual::SystemFacts facts;
  for (auto _ : state) {
    core::OfflineExtractor extractor;
    auto result = extractor.run(facts);
    benchmark::DoNotOptimize(result.tunables.size());
  }
}
BENCHMARK(BM_OfflineExtraction)->Unit(benchmark::kMillisecond);

void BM_JsonRoundTrip(benchmark::State& state) {
  util::Json arr = util::Json::makeArray();
  for (int i = 0; i < 100; ++i) {
    util::Json rule = util::Json::makeObject();
    rule.set("Parameter", util::Json{"osc.max_rpcs_in_flight"});
    rule.set("Rule Description", util::Json{"raise concurrency for small records"});
    rule.set("value", util::Json{i});
    arr.push(std::move(rule));
  }
  const std::string text = arr.dump();
  for (auto _ : state) {
    auto parsed = util::Json::parse(text);
    benchmark::DoNotOptimize(parsed.asArray().size());
  }
}
BENCHMARK(BM_JsonRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_ExprEvaluate(benchmark::State& state) {
  const util::Expr expr = util::Expr::parse("min(client_ram_mb / 2, budget) / 2");
  const util::SymbolResolver resolver = [](std::string_view name) -> std::optional<double> {
    if (name == "client_ram_mb") return 200704.0;
    if (name == "budget") return 512.0;
    return std::nullopt;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.evaluate(resolver));
  }
}
BENCHMARK(BM_ExprEvaluate);

}  // namespace

BENCHMARK_MAIN();

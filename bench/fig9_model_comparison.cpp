// Fig. 9: tuning performance on IOR_16M with different LLMs acting as the
// Tuning Agent (§5.5 labels the workload IOR_large; its large-transfer
// workload is IOR_16M).
#include <cstdio>

#include "common.hpp"
#include "core/harness.hpp"

using namespace stellar;

int main() {
  bench::printHeader("Tuning-agent model comparison on IOR_16M", "Figure 9");

  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IOR_16M", bench::benchOptions());
  const core::RepeatedMeasure def = core::measureConfig(sim, job, pfs::PfsConfig{}, {.repeats = 8, .seedBase = 60});

  util::Table table{{"tuning agent", "best wall time (s)", "speedup", "attempts"}};
  table.addRow({"default config", bench::meanCi(def.summary.mean, def.summary.ci90),
                "1.00x", "-"});
  for (const llm::ModelProfile& model :
       {llm::claude37Sonnet(), llm::gpt4o(), llm::llama31_70b()}) {
    core::StellarOptions options;
    options.seed = 42;
    options.agent.model = model;
    const core::TuningEvaluation eval = core::evaluateTuning(sim, options, job, {.repeats = 8});
    const util::Summary best = eval.bestSummary();
    table.addRow({model.name, bench::meanCi(best.mean, best.ci90),
                  bench::fmt(def.summary.mean / best.mean) + "x",
                  bench::fmt(eval.meanAttempts(), 1)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.render().c_str());
  std::printf(
      "Expected shape (paper): all three models land similar near-optimal\n"
      "configurations (paper reports up to 4.91x on this workload); weaker\n"
      "models may take more cautious steps but converge within the budget.\n");
  return 0;
}

// Rule-set lifecycle demo (§4.4 / §5.3): learn rules on the benchmark
// suite, inspect the merged global Rule Set, then apply it to a
// previously unseen application and compare against a cold start.
#include <cstdio>

#include "core/engine.hpp"
#include "util/units.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace stellar;

  workloads::WorkloadOptions options;
  options.ranks = 50;
  options.scale = 0.1;
  pfs::PfsSimulator simulator;

  // --- learn on the benchmarks ---------------------------------------------
  rules::RuleSet global;
  std::printf("=== accumulating rules over the benchmark suite ===\n");
  for (const std::string& name : workloads::benchmarkNames()) {
    core::StellarOptions stellar;
    stellar.seed = 7;
    stellar.agent.seed = 7;
    core::StellarEngine engine{simulator, stellar};
    const auto run = engine.tune(workloads::byName(name, options), &global);
    std::printf("  %-16s %.2fx in %zu attempts -> %zu rules total\n",
                name.c_str(), run.bestSpeedup(), run.attempts.size(), global.size());
  }

  std::printf("\n=== the global rule set (the paper's enforced JSON form) ===\n");
  std::printf("%s\n", global.toJson().dump(2).c_str());

  // --- apply to an unseen application ---------------------------------------
  const pfs::JobSpec app = workloads::byName("AMReX", options);
  core::StellarOptions stellar;
  stellar.seed = 99;
  stellar.agent.seed = 99;

  core::StellarEngine cold{simulator, stellar};
  const auto coldRun = cold.tune(app);

  core::StellarEngine warm{simulator, stellar};
  rules::RuleSet copy = global;
  const auto warmRun = warm.tune(app, &copy);

  std::printf("=== extrapolation to unseen AMReX ===\n");
  std::printf("cold start: first attempt %s, best %s (%.2fx) in %zu attempts\n",
              coldRun.iterationSeconds.size() > 1
                  ? util::formatSeconds(coldRun.iterationSeconds[1]).c_str()
                  : "-",
              util::formatSeconds(coldRun.bestSeconds).c_str(), coldRun.bestSpeedup(),
              coldRun.attempts.size());
  std::printf("with rules: first attempt %s, best %s (%.2fx) in %zu attempts\n",
              warmRun.iterationSeconds.size() > 1
                  ? util::formatSeconds(warmRun.iterationSeconds[1]).c_str()
                  : "-",
              util::formatSeconds(warmRun.bestSeconds).c_str(), warmRun.bestSpeedup(),
              warmRun.attempts.size());
  return 0;
}

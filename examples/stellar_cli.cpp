// stellar_cli — command-line front end for the whole engine.
//
//   stellar_cli extract
//       Run the offline RAG parameter extraction and print the result.
//   stellar_cli tune <workload> [options]
//       One complete tuning run; prints the summary (and optionally the
//       full Fig. 10-style transcript).
//   stellar_cli suite [options]
//       Tune the five benchmark workloads in sequence, accumulating the
//       global rule set (persisted with --rules).
//   stellar_cli workloads
//       List available workload names.
//
// Options:
//   --scale <0..1]      workload volume scale            (default 0.1)
//   --seed <n>          run seed                         (default 42)
//   --model <name>      tuning-agent model profile       (default claude-3.7-sonnet)
//   --rules <file>      load/save the global rule set JSON
//   --scope user|system tuning scope (§5.6)              (default system)
//   --transcript        print the full agent transcript
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/offline_extractor.hpp"
#include "util/file.hpp"
#include "util/units.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace stellar;

struct CliOptions {
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::string model = "claude-3.7-sonnet";
  std::string rulesFile;
  bool userScope = false;
  bool transcript = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: stellar_cli <extract|tune|suite|workloads> [args]\n"
               "  tune <workload> [--scale S] [--seed N] [--model NAME]\n"
               "       [--rules FILE] [--scope user|system] [--transcript]\n"
               "  suite [--scale S] [--seed N] [--rules FILE]\n");
  std::exit(2);
}

CliOptions parseOptions(const std::vector<std::string>& args, std::size_t start) {
  CliOptions opts;
  for (std::size_t i = start; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        usage();
      }
      return args[++i];
    };
    if (arg == "--scale") {
      opts.scale = std::atof(value().c_str());
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--model") {
      opts.model = value();
    } else if (arg == "--rules") {
      opts.rulesFile = value();
    } else if (arg == "--scope") {
      const std::string scope = value();
      if (scope == "user") {
        opts.userScope = true;
      } else if (scope != "system") {
        usage();
      }
    } else if (arg == "--transcript") {
      opts.transcript = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
    }
  }
  return opts;
}

core::StellarOptions engineOptions(const CliOptions& cli) {
  core::StellarOptions options;
  options.seed = cli.seed;
  options.agent.seed = cli.seed;
  options.agent.model = llm::profileByName(cli.model);
  options.scope = cli.userScope ? core::TuningScope::UserAccessible
                                : core::TuningScope::SystemWide;
  return options;
}

rules::RuleSet loadRules(const CliOptions& cli) {
  if (!cli.rulesFile.empty() && util::fileExists(cli.rulesFile)) {
    rules::RuleSet set = rules::RuleSet::loadFile(cli.rulesFile);
    std::printf("loaded %zu rules from %s\n", set.size(), cli.rulesFile.c_str());
    return set;
  }
  return {};
}

void saveRules(const CliOptions& cli, const rules::RuleSet& set) {
  if (!cli.rulesFile.empty()) {
    set.saveFile(cli.rulesFile);
    std::printf("saved %zu rules to %s\n", set.size(), cli.rulesFile.c_str());
  }
}

void printRun(const core::TuningRunResult& run, bool withTranscript) {
  std::printf("workload:      %s\n", run.workload.c_str());
  std::printf("default:       %s\n", util::formatSeconds(run.defaultSeconds).c_str());
  std::printf("best:          %s  (%.2fx, %zu attempts)\n",
              util::formatSeconds(run.bestSeconds).c_str(), run.bestSpeedup(),
              run.attempts.size());
  std::printf("changed knobs: %s\n",
              run.bestConfig.diffAgainst(pfs::PfsConfig{}).c_str());
  std::printf("stop reason:   %s\n", run.endReason.c_str());
  const llm::UsageTotals tokens = run.meter.totals();
  std::printf("llm usage:     %zu calls, %zu in / %zu out tokens (%.0f%% cached)\n",
              tokens.calls, tokens.inputTokens, tokens.outputTokens,
              tokens.cacheHitRate() * 100);
  if (withTranscript) {
    std::printf("\n--- transcript ---\n%s", run.transcript.render().c_str());
  }
}

int cmdExtract() {
  manual::SystemFacts facts;
  const core::ExtractionResult result = core::OfflineExtractor{}.run(facts);
  std::printf("indexed %zu chunks; extracted %zu tunables (precision %.2f, "
              "recall %.2f)\n\n",
              result.chunksIndexed, result.tunables.size(), result.precision(),
              result.recall());
  for (const core::ExtractedParam& p : result.tunables) {
    std::printf("%-34s [%lld, %lld]  (%s .. %s)\n", p.name.c_str(),
                static_cast<long long>(p.knowledge.minValue),
                static_cast<long long>(p.knowledge.maxValue), p.minExpr.c_str(),
                p.maxExpr.c_str());
  }
  return 0;
}

int cmdTune(const std::string& workload, const CliOptions& cli) {
  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = cli.scale;
  const pfs::JobSpec job = workloads::byName(workload, wopts);

  pfs::PfsSimulator simulator;
  core::StellarEngine engine{simulator, engineOptions(cli)};
  rules::RuleSet global = loadRules(cli);
  const core::TuningRunResult run = engine.tune(job, &global);
  printRun(run, cli.transcript);
  saveRules(cli, global);
  return 0;
}

int cmdSuite(const CliOptions& cli) {
  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = cli.scale;
  pfs::PfsSimulator simulator;
  rules::RuleSet global = loadRules(cli);
  for (const std::string& name : workloads::benchmarkNames()) {
    core::StellarEngine engine{simulator, engineOptions(cli)};
    const core::TuningRunResult run =
        engine.tune(workloads::byName(name, wopts), &global);
    std::printf("%-16s %.2fx in %zu attempts (rules now: %zu)\n", name.c_str(),
                run.bestSpeedup(), run.attempts.size(), global.size());
  }
  saveRules(cli, global);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args{argv + 1, argv + argc};
  if (args.empty()) {
    usage();
  }
  const std::string& command = args[0];
  try {
    if (command == "extract") {
      return cmdExtract();
    }
    if (command == "workloads") {
      for (const auto& name : stellar::workloads::benchmarkNames()) {
        std::printf("%s\n", name.c_str());
      }
      for (const auto& name : stellar::workloads::realAppNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (command == "tune") {
      if (args.size() < 2) {
        usage();
      }
      return cmdTune(args[1], parseOptions(args, 2));
    }
    if (command == "suite") {
      return cmdSuite(parseOptions(args, 1));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}

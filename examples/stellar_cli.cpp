// stellar_cli — command-line front end for the whole engine.
//
//   stellar_cli extract
//       Run the offline RAG parameter extraction and print the result.
//   stellar_cli tune <workload> [options]
//       One complete tuning run; prints the summary (and optionally the
//       full Fig. 10-style transcript).
//   stellar_cli suite [options]
//       Tune the five benchmark workloads in sequence, accumulating the
//       global rule set (persisted with --rules).
//   stellar_cli workloads
//       List available workload names.
//   stellar_cli campaign <spec.json> [options]   (also: --campaign=SPEC)
//       Expand the campaign spec (workloads x seeds x models x faults) and
//       tune every cell concurrently, filing experiences into --store.
//       Prints one machine-readable aggregate JSON document to stdout; a
//       re-run with the same spec and store resumes, skipping completed
//       cells (the aggregate is byte-identical).
//
// Options:
//   --scale <0..1]      workload volume scale            (default 0.1)
//   --seed <n>          run seed                         (default 42)
//   --model <name>      tuning-agent model profile       (default claude-3.7-sonnet)
//   --rules <file>      load/save the global rule set JSON
//   --scope user|system tuning scope (§5.6)              (default system)
//   --transcript        print the full agent transcript
//   --trace <file>      write a Chrome-trace (chrome://tracing) JSON of the
//                       run: sim event loop, RPCs, tuning iterations,
//                       harness repeats ("--trace=out.json" also accepted)
//   --metrics           print the counter-registry snapshot after the run
//   --json              print the canonical TuningRunResult JSON instead of
//                       the human-readable summary
//   --faults <spec>     deterministic fault plan applied to every simulated
//                       run AND to the agent's model calls: a scenario name
//                       (degraded-ost, flaky-network, mds-storm, flaky-llm,
//                       degrading-llm, llm-outage) or a comma-separated event
//                       list, e.g.
//                       "ost:2:degrade:0.3@10-40,llm:timeout:0.2@0-99,seed:7"
//   --sanitize <mode>   tool-call payload sanitizer: observe (default) or
//                       enforce (repair hallucinated/out-of-range moves)
//   --fallback-model <name>  model the resilience ladder falls back to when
//                       the primary's circuit breaker opens
//   --session-journal <file>  crash-safe JSONL session journal: measurements
//                       are recorded as they complete; re-running the same
//                       command resumes the session bit-identically
//   --max-measurements <n>  interrupt the session (exit 3) after n fresh
//                       journaled measurements — deterministic kill testing
//   --store <file>      persistent experience store (JSONL); completed runs
//                       are filed into it
//   --tenant <id>       file completed runs under this tenant, sharing the
//                       stellard service layout: records (tenant-tagged,
//                       keyed by their cell) land in the per-tenant shard
//                       journal `<store>.tenant-<id>` and the session
//                       journal defaults to `<store>.sessions/<cell>.jsonl`,
//                       so a later stellard commit absorbs them
//   --warm-start        recall prior experience from --store to warm-start
//                       the tuning agent on similar workloads
//   --campaign <spec>   run the campaign described by this JSON spec file
//   --manifest <file>   campaign resume manifest (default: <store>.manifest)
//   --jobs <n>          campaign worker threads (default: hardware)
//   --max-cells <n>     stop a campaign after n cells (resume testing)
//   --help, -h          print this help and exit 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/harness.hpp"
#include "core/offline_extractor.hpp"
#include "exp/campaign.hpp"
#include "exp/experience_store.hpp"
#include "faults/fault_plan.hpp"
#include "obs/export.hpp"
#include "service/session.hpp"
#include "util/file.hpp"
#include "util/units.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace stellar;

struct CliOptions {
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::string model = "claude-3.7-sonnet";
  std::string rulesFile;
  bool userScope = false;
  bool transcript = false;
  std::string traceFile;
  bool metrics = false;
  bool json = false;
  std::string faultsSpec;
  std::string storePath;
  std::string tenant;
  bool warmStart = false;
  std::string campaignSpec;
  std::string manifestPath;
  std::size_t jobs = 0;
  std::size_t maxCells = 0;
  std::string sanitize;
  std::string fallbackModel;
  std::string sessionJournal;
  std::size_t maxMeasurements = 0;
};

/// Exit 0 (help requested: text to stdout) or 2 (usage error: stderr).
[[noreturn]] void usage(int code = 2) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: stellar_cli <extract|tune|suite|workloads|campaign> [args]\n"
               "  tune <workload> [--scale S] [--seed N] [--model NAME]\n"
               "       [--rules FILE] [--scope user|system] [--transcript]\n"
               "       [--trace FILE] [--metrics] [--json] [--faults SPEC]\n"
               "       [--store FILE] [--tenant ID] [--warm-start]\n"
               "       [--sanitize observe|enforce]\n"
               "       [--fallback-model NAME] [--session-journal FILE]\n"
               "       [--max-measurements N]\n"
               "  suite [--scale S] [--seed N] [--rules FILE]\n"
               "        [--trace FILE] [--metrics] [--faults SPEC]\n"
               "        [--store FILE] [--tenant ID] [--warm-start]\n"
               "  campaign SPEC.json [--store FILE] [--manifest FILE]\n"
               "           [--jobs N] [--max-cells N] [--metrics]\n"
               "           (--campaign=SPEC.json is accepted as a command too)\n"
               "  --help, -h  print this help and exit 0\n");
  std::exit(code);
}

CliOptions parseOptions(const std::vector<std::string>& args, std::size_t start) {
  CliOptions opts;
  for (std::size_t i = start; i < args.size(); ++i) {
    std::string arg = args[i];
    // Accept both "--opt value" and "--opt=value".
    std::string inlineValue;
    bool hasInlineValue = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inlineValue = arg.substr(eq + 1);
        arg.erase(eq);
        hasInlineValue = true;
      }
    }
    const auto value = [&]() -> std::string {
      if (hasInlineValue) {
        return inlineValue;
      }
      if (i + 1 >= args.size()) {
        usage();
      }
      return args[++i];
    };
    if (arg == "--scale") {
      opts.scale = std::atof(value().c_str());
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--model") {
      opts.model = value();
    } else if (arg == "--rules") {
      opts.rulesFile = value();
    } else if (arg == "--scope") {
      const std::string scope = value();
      if (scope == "user") {
        opts.userScope = true;
      } else if (scope != "system") {
        usage();
      }
    } else if (arg == "--transcript") {
      opts.transcript = true;
    } else if (arg == "--trace") {
      opts.traceFile = value();
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--faults") {
      opts.faultsSpec = value();
    } else if (arg == "--store") {
      opts.storePath = value();
    } else if (arg == "--tenant") {
      opts.tenant = value();
      if (!service::validTenantId(opts.tenant)) {
        std::fprintf(stderr, "invalid --tenant id: %s ([a-z0-9_-] only)\n",
                     opts.tenant.c_str());
        usage();
      }
    } else if (arg == "--warm-start") {
      opts.warmStart = true;
    } else if (arg == "--campaign") {
      opts.campaignSpec = value();
    } else if (arg == "--manifest") {
      opts.manifestPath = value();
    } else if (arg == "--jobs") {
      opts.jobs = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--max-cells") {
      opts.maxCells = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--sanitize") {
      opts.sanitize = value();
    } else if (arg == "--fallback-model") {
      opts.fallbackModel = value();
    } else if (arg == "--session-journal") {
      opts.sessionJournal = value();
    } else if (arg == "--max-measurements") {
      opts.maxMeasurements = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
    }
  }
  return opts;
}

core::StellarOptions engineOptions(const CliOptions& cli) {
  core::StellarOptions options;
  options.seed = cli.seed;
  options.agent.seed = cli.seed;
  options.agent.model = llm::profileByName(cli.model);
  options.scope = cli.userScope ? core::TuningScope::UserAccessible
                                : core::TuningScope::SystemWide;
  if (!cli.sanitize.empty()) {
    options.sanitizer = agents::sanitizerModeByName(cli.sanitize);
  }
  if (!cli.fallbackModel.empty()) {
    options.fallbackModel = llm::profileByName(cli.fallbackModel);
  }
  options.maxMeasurements = cli.maxMeasurements;
  return options;
}

rules::RuleSet loadRules(const CliOptions& cli) {
  if (!cli.rulesFile.empty() && util::fileExists(cli.rulesFile)) {
    try {
      rules::RuleSet set = rules::RuleSet::loadFile(cli.rulesFile);
      // Status to stderr under --json: stdout stays one parseable doc.
      std::fprintf(cli.json ? stderr : stdout, "loaded %zu rules from %s\n",
                   set.size(), cli.rulesFile.c_str());
      return set;
    } catch (const util::JsonError& e) {
      // A corrupt rules file downgrades to a cold start; the tuning run
      // proceeds and --rules will rewrite the file with fresh rules.
      std::fprintf(stderr, "warning: %s — starting with an empty rule set\n",
                   e.what());
    }
  }
  return {};
}

void saveRules(const CliOptions& cli, const rules::RuleSet& set) {
  if (!cli.rulesFile.empty()) {
    set.saveFile(cli.rulesFile);
    std::fprintf(cli.json ? stderr : stdout, "saved %zu rules to %s\n", set.size(),
                 cli.rulesFile.c_str());
  }
}

/// Opens the --store experience store (nullptr without --store). Shared by
/// tune/suite: completed runs are filed via fileRun, and --warm-start wires
/// the store into the engine as the WarmStartProvider.
std::unique_ptr<exp::ExperienceStore> openStore(const CliOptions& cli,
                                                obs::CounterRegistry* counters) {
  if (cli.storePath.empty()) {
    if (cli.warmStart) {
      std::fprintf(stderr, "warning: --warm-start has no effect without --store\n");
    }
    return nullptr;
  }
  exp::StoreOptions options;
  options.counters = counters;
  auto store = std::make_unique<exp::ExperienceStore>(cli.storePath, options);
  std::fprintf(cli.json ? stderr : stdout,
               "experience:    %zu records in %s (%zu corrupt lines skipped)\n",
               store->size(), cli.storePath.c_str(), store->corruptLinesSkipped());
  return store;
}

/// The cell identity stellard would assign this run — shared so a CLI run
/// and a service session of the same work dedup to one record.
std::string cellKeyFor(const CliOptions& cli, const std::string& workload) {
  service::SubmitOptions request;
  request.tenant = cli.tenant;
  request.workload = workload;
  request.seed = cli.seed;
  request.model = cli.model;
  request.faults = cli.faultsSpec;
  request.scale = cli.scale;
  request.ranks = 50;
  return service::cellKey(request);
}

void fileRun(const CliOptions& cli, exp::ExperienceStore* store,
             obs::CounterRegistry* counters, const core::TuningRunResult& run) {
  if (store == nullptr) {
    return;
  }
  exp::ExperienceRecord record =
      exp::recordFromRun(run, cli.seed, cli.model, cli.faultsSpec);
  if (!cli.tenant.empty()) {
    // Tenanted runs share the stellard service layout: the record is
    // tenant-tagged, keyed by its cell (re-runs dedup last-wins), and lands
    // in the per-tenant shard journal next to the base store, where the
    // next stellard/FleetStore commit absorbs it into the recall set.
    record.tenant = cli.tenant;
    record.id = cellKeyFor(cli, run.workload);
    exp::StoreOptions shardOptions;
    shardOptions.counters = counters;
    exp::ExperienceStore shard{cli.storePath + ".tenant-" + cli.tenant,
                               shardOptions};
    const std::string id = shard.append(std::move(record));
    if (counters != nullptr) {
      counters->counter("service.store.shard_appends", {{"tenant", cli.tenant}})
          .add(1.0);
    }
    std::fprintf(cli.json ? stderr : stdout,
                 "experience:    filed %s for tenant %s in %s\n", id.c_str(),
                 cli.tenant.c_str(), shard.path().c_str());
    return;
  }
  const std::string id = store->append(std::move(record));
  store->compact();
  std::fprintf(cli.json ? stderr : stdout, "experience:    filed %s (%zu records)\n",
               id.c_str(), store->size());
}

void printRun(const core::TuningRunResult& run, bool withTranscript) {
  std::printf("workload:      %s\n", run.workload.c_str());
  std::printf("default:       %s\n", util::formatSeconds(run.defaultSeconds).c_str());
  std::printf("best:          %s  (%.2fx, %zu attempts)\n",
              util::formatSeconds(run.bestSeconds).c_str(), run.bestSpeedup(),
              run.attempts.size());
  std::printf("changed knobs: %s\n",
              run.bestConfig.diffAgainst(pfs::PfsConfig{}).c_str());
  if (run.warmStarted) {
    std::printf("warm start:    %zu recalled record(s), similarity %.3f\n",
                run.warmStartSources.size(), run.warmStartSimilarity);
  }
  std::printf("stop reason:   %s\n", run.endReason.c_str());
  if (run.resilienceRung != "primary" || run.resilience.undeliveredDecisions > 0 ||
      run.resilience.sanitizerIssues > 0) {
    std::printf("resilience:    rung %s, %llu failed calls (%llu wasted attempts), "
                "%llu breaker trips, %llu sanitizer issues\n",
                run.resilienceRung.c_str(),
                static_cast<unsigned long long>(run.resilience.llmFailedCalls),
                static_cast<unsigned long long>(run.resilience.llmWastedAttempts),
                static_cast<unsigned long long>(run.resilience.breakerTrips),
                static_cast<unsigned long long>(run.resilience.sanitizerIssues));
  }
  const llm::UsageTotals tokens = run.meter.totals();
  std::printf("llm usage:     %zu calls, %zu in / %zu out tokens (%.0f%% cached)\n",
              tokens.calls, tokens.inputTokens, tokens.outputTokens,
              tokens.cacheHitRate() * 100);
  if (withTranscript) {
    std::printf("\n--- transcript ---\n%s", run.transcript.render().c_str());
  }
}

int cmdExtract() {
  manual::SystemFacts facts;
  const core::ExtractionResult result = core::OfflineExtractor{}.run(facts);
  std::printf("indexed %zu chunks; extracted %zu tunables (precision %.2f, "
              "recall %.2f)\n\n",
              result.chunksIndexed, result.tunables.size(), result.precision(),
              result.recall());
  for (const core::ExtractedParam& p : result.tunables) {
    std::printf("%-34s [%lld, %lld]  (%s .. %s)\n", p.name.c_str(),
                static_cast<long long>(p.knowledge.minValue),
                static_cast<long long>(p.knowledge.maxValue), p.minExpr.c_str(),
                p.maxExpr.c_str());
  }
  return 0;
}

/// Observability plumbing shared by tune/suite: a tracer that exists only
/// when --trace was given and a registry that always collects (rendering
/// is gated on --metrics; collection overhead is one flush per run).
struct ObsBundle {
  // 1 Mi ring slots: a full `suite` run emits ~300k records; the default
  // 64 Ki ring would wrap and silently drop the earliest workloads.
  obs::Tracer tracer{{.enabled = true, .capacity = 1 << 20}};
  obs::CounterRegistry registry;
  std::string traceFile;
  // Owned here so the plan outlives every simulator that points at it.
  faults::FaultPlan faultPlan;

  [[nodiscard]] pfs::SimulatorOptions simulatorOptions() {
    return pfs::SimulatorOptions{
        .tracer = traceFile.empty() ? nullptr : &tracer,
        .counters = &registry,
        .faults = faultPlan.empty() ? nullptr : &faultPlan,
    };
  }

  /// Parses --faults; a bad spec is a usage error (exit 2 with the reason
  /// and the valid grammar), never an abort.
  [[nodiscard]] bool loadFaults(const CliOptions& cli) {
    if (cli.faultsSpec.empty()) {
      return true;
    }
    try {
      faultPlan = faults::parseFaultSpec(cli.faultsSpec);
    } catch (const faults::FaultSpecError& e) {
      std::fprintf(stderr, "invalid --faults spec: %s\n", e.what());
      std::fprintf(stderr, "scenarios:");
      for (const auto& name : faults::scenarioNames()) {
        std::fprintf(stderr, " %s", name.c_str());
      }
      std::fprintf(stderr,
                   "\nevent grammar: ost:<i|*>:degrade:<mult>@<b>-<e>, "
                   "ost:<i|*>:outage@<b>-<e>, mds:overload:<mult>@<b>-<e>,\n"
                   "               rpc:drop:<p>@<b>-<e>, rpc:stall:<sec>@<b>-<e>, "
                   "noise:spike:<mult>@<b>-<e>, seed:<n>,\n"
                   "               llm:<timeout|ratelimit|truncate|malformed|"
                   "bad-knob|bad-value|stale>:<p>[:<model|*>]@<call>-<call>\n");
      return false;
    }
    // Status goes to stderr under --json so stdout stays one parseable doc.
    std::fprintf(cli.json ? stderr : stdout, "fault plan:    %s\n",
                 faultPlan.describe().c_str());
    return true;
  }

  void finish(const CliOptions& cli) {
    FILE* out = cli.json ? stderr : stdout;
    if (!faultPlan.empty()) {
      std::fprintf(out,
                   "resilience:    %.0f rpc timeouts, %.0f retries, %.0f gave up, "
                   "%.0f fault windows\n",
                   registry.counter("pfs.rpc.timeouts").value(),
                   registry.counter("pfs.rpc.retries").value(),
                   registry.counter("pfs.rpc.gave_up").value(),
                   registry.counter("faults.windows_opened").value());
    }
    if (!traceFile.empty()) {
      obs::writeChromeTrace(tracer, traceFile);
      std::fprintf(out, "trace:         %s (%llu records, %llu dropped)\n",
                   traceFile.c_str(),
                   static_cast<unsigned long long>(tracer.recorded()),
                   static_cast<unsigned long long>(tracer.dropped()));
    }
    if (cli.metrics) {
      std::fprintf(out, "\n--- metrics ---\n%s", registry.renderTable().c_str());
    }
  }
};

int cmdTune(const std::string& workload, const CliOptions& cli) {
  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = cli.scale;
  const pfs::JobSpec job = workloads::byName(workload, wopts);

  ObsBundle bundle;
  bundle.traceFile = cli.traceFile;
  if (!bundle.loadFaults(cli)) {
    return 2;
  }
  pfs::PfsSimulator simulator{bundle.simulatorOptions()};
  const std::unique_ptr<exp::ExperienceStore> store =
      openStore(cli, &bundle.registry);
  core::StellarOptions opts = engineOptions(cli);
  if (cli.warmStart && store != nullptr) {
    opts.warmStart = store.get();
  }
  std::string journalPath = cli.sessionJournal;
  if (journalPath.empty() && !cli.tenant.empty() && !cli.storePath.empty()) {
    // Tenanted runs default to the stellard session-journal layout, so a
    // CLI run killed mid-session resumes under either front end.
    journalPath = cli.storePath + ".sessions/" +
                  service::cellFileStem(cellKeyFor(cli, workload)) + ".jsonl";
  }
  std::unique_ptr<core::SessionJournal> journal;
  if (!journalPath.empty()) {
    util::ensureParentDir(journalPath);
    journal = std::make_unique<core::SessionJournal>(journalPath);
    std::fprintf(cli.json ? stderr : stdout,
                 "journal:       %s (%zu measurements, %zu corrupt lines skipped%s)\n",
                 journalPath.c_str(), journal->measurementCount(),
                 journal->corruptLinesSkipped(),
                 journal->complete() ? ", complete" : "");
    opts.journal = journal.get();
  }
  core::StellarEngine engine{simulator, opts};
  rules::RuleSet global = loadRules(cli);
  core::TuningRunResult run;
  try {
    run = engine.tune(job, &global);
  } catch (const core::SessionInterrupted& e) {
    // Deterministic kill point (--max-measurements): progress up to here is
    // journaled; re-running the same command resumes the session.
    std::fprintf(stderr, "session interrupted: %s\n", e.what());
    bundle.finish(cli);
    return 3;
  }
  fileRun(cli, store.get(), &bundle.registry, run);
  // Re-measure the winning configuration under the harness protocol —
  // the validation numbers the paper reports, and the "harness" spans of
  // the trace.
  const core::RepeatedMeasure validated = core::measureConfig(
      simulator, job, run.bestConfig, {.repeats = 4, .seedBase = cli.seed ^ 0xBE57});
  if (cli.json) {
    util::Json doc = run.toJson();
    doc.set("validated_best_mean_seconds", validated.summary.mean);
    doc.set("validated_best_ci90_seconds", validated.summary.ci90);
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    printRun(run, cli.transcript);
    std::printf("validated:     %s ± %s over %zu repeats\n",
                util::formatSeconds(validated.summary.mean).c_str(),
                util::formatSeconds(validated.summary.ci90).c_str(),
                validated.samples.size());
  }
  saveRules(cli, global);
  bundle.finish(cli);
  return 0;
}

int cmdSuite(const CliOptions& cli) {
  workloads::WorkloadOptions wopts;
  wopts.ranks = 50;
  wopts.scale = cli.scale;
  ObsBundle bundle;
  bundle.traceFile = cli.traceFile;
  if (!bundle.loadFaults(cli)) {
    return 2;
  }
  pfs::PfsSimulator simulator{bundle.simulatorOptions()};
  const std::unique_ptr<exp::ExperienceStore> store =
      openStore(cli, &bundle.registry);
  rules::RuleSet global = loadRules(cli);
  for (const std::string& name : workloads::benchmarkNames()) {
    core::StellarOptions opts = engineOptions(cli);
    if (cli.warmStart && store != nullptr) {
      opts.warmStart = store.get();
    }
    core::StellarEngine engine{simulator, opts};
    const core::TuningRunResult run =
        engine.tune(workloads::byName(name, wopts), &global);
    fileRun(cli, store.get(), &bundle.registry, run);
    std::printf("%-16s %.2fx in %zu attempts (rules now: %zu)%s\n", name.c_str(),
                run.bestSpeedup(), run.attempts.size(), global.size(),
                run.warmStarted ? "  [warm]" : "");
  }
  saveRules(cli, global);
  bundle.finish(cli);
  return 0;
}

int cmdCampaign(const std::string& specPath, CliOptions cli) {
  if (specPath.empty()) {
    std::fprintf(stderr, "campaign: missing spec file\n");
    usage();
  }
  // The aggregate document is the command's stdout; everything else
  // (progress, store stats, metrics) goes to stderr.
  cli.json = true;
  exp::CampaignSpec spec;
  try {
    spec = exp::CampaignSpec::loadFile(specPath);
  } catch (const util::JsonError& e) {
    std::fprintf(stderr, "invalid campaign spec %s: %s\n", specPath.c_str(),
                 e.what());
    return 2;
  }
  ObsBundle bundle;
  bundle.traceFile = cli.traceFile;
  exp::CampaignOptions options;
  options.storePath = cli.storePath;
  options.manifestPath = cli.manifestPath;
  options.threads = cli.jobs;
  options.maxCells = cli.maxCells;
  options.store.counters = &bundle.registry;
  options.counters = &bundle.registry;
  options.tracer = bundle.traceFile.empty() ? nullptr : &bundle.tracer;
  exp::CampaignRunner runner{options};
  const exp::CampaignResult result = runner.run(spec);
  std::fprintf(stderr, "campaign:      %zu cells (%zu executed, %zu resumed)%s\n",
               result.cells.size(), result.executed, result.skipped,
               result.complete ? "" : "  [incomplete]");
  std::printf("%s\n", result.aggregateJson(spec).dump(2).c_str());
  bundle.finish(cli);
  return result.complete ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args{argv + 1, argv + argc};
  if (args.empty()) {
    usage();
  }
  const std::string& command = args[0];
  if (command == "--help" || command == "-h") {
    usage(0);
  }
  try {
    // Flag-style invocation per the campaign surface: stellar_cli
    // --campaign=SPEC [--store=...]. Everything is parsed as options.
    if (command.rfind("--", 0) == 0) {
      const CliOptions cli = parseOptions(args, 0);
      if (!cli.campaignSpec.empty()) {
        return cmdCampaign(cli.campaignSpec, cli);
      }
      std::fprintf(stderr, "no command given (expected --campaign=SPEC)\n");
      usage();
    }
    if (command == "extract") {
      return cmdExtract();
    }
    if (command == "workloads") {
      for (const auto& name : stellar::workloads::benchmarkNames()) {
        std::printf("%s\n", name.c_str());
      }
      for (const auto& name : stellar::workloads::realAppNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (command == "tune") {
      if (args.size() < 2) {
        usage();
      }
      return cmdTune(args[1], parseOptions(args, 2));
    }
    if (command == "suite") {
      return cmdSuite(parseOptions(args, 1));
    }
    if (command == "campaign") {
      const std::string spec = args.size() >= 2 ? args[1] : "";
      return cmdCampaign(spec, parseOptions(args, spec.empty() ? 1 : 2));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}

// Fig. 10 case study: a granular view of one tuning run on MDWorkbench_8K
// — the initial run, the Analysis Agent's I/O report, the Tuning Agent's
// follow-up questions, every configuration attempt with its written
// rationale, the stop decision, and the rules distilled at the end.
#include <cstdio>

#include "core/engine.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace stellar;

  workloads::WorkloadOptions options;
  options.ranks = 50;
  options.scale = 0.1;
  const pfs::JobSpec job = workloads::byName("MDWorkbench_8K", options);

  pfs::PfsSimulator simulator;
  core::StellarOptions stellar;
  stellar.seed = 2025;
  stellar.agent.seed = 2025;
  core::StellarEngine engine{simulator, stellar};

  rules::RuleSet global;
  const core::TuningRunResult result = engine.tune(job, &global);

  std::printf("=== STELLAR case study: %s (cf. paper Fig. 10) ===\n\n",
              result.workload.c_str());
  std::printf("%s", result.transcript.render().c_str());

  std::printf("=== outcome ===\n");
  std::printf("default: %.3f s -> best: %.3f s (%.2fx) in %zu attempts\n",
              result.defaultSeconds, result.bestSeconds, result.bestSpeedup(),
              result.attempts.size());
  std::printf("\n=== global rule set after this run ===\n%s\n",
              global.toJson().dump(2).c_str());
  return 0;
}

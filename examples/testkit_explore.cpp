// Property-based exploration CLI for the simulator validation kit.
//
//   testkit_explore --cases=500 --seed=42          # random exploration
//   testkit_explore --case-seed=0xDEADBEEF         # reproduce one failure
//   testkit_explore --mutate=write-conservation    # checker mutation test
//   testkit_explore --fuzz-corpus=tests/testkit/corpus --fuzz-mutations=64
//
// Exit code 0 when every check passes, 1 otherwise. The exploration prints
// a one-command repro line for every failure it finds.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "testkit/explore.hpp"
#include "testkit/fuzz.hpp"
#include "testkit/invariants.hpp"

namespace {

bool flagValue(std::string_view arg, std::string_view name, std::string_view& out) {
  if (arg.size() <= name.size() + 1 || arg.substr(0, name.size()) != name ||
      arg[name.size()] != '=') {
    return false;
  }
  out = arg.substr(name.size() + 1);
  return true;
}

std::uint64_t parseU64(std::string_view text) {
  return std::strtoull(std::string(text).c_str(), nullptr, 0);
}

void usage() {
  std::cout
      << "testkit_explore: property-based validation of the PFS simulator\n"
         "\n"
         "  --cases=N            number of random cases (default 500)\n"
         "  --seed=N             base seed; case i uses mix64(seed, i) (default 42)\n"
         "  --budget-seconds=S   stop early after S wall seconds (0 = unlimited)\n"
         "  --metamorphic-every=K  run metamorphic laws every K cases (0 = off)\n"
         "  --no-obs             skip obs-counter consistency checks\n"
         "  --no-oracles         skip the differential oracles\n"
         "  --no-shrink          report failures without shrinking\n"
         "  --mutate=NAME        apply a deliberate result corruption; the run\n"
         "                       then MUST fail (mutation test of the checker).\n"
         "                       NAME=all cycles through every mutation.\n"
         "  --case-seed=0xHEX    reproduce exactly one case seed and exit\n"
         "  --fuzz-corpus=DIR    replay + mutate the parser fuzz corpus\n"
         "  --fuzz-seed=N        seed for fuzz mutations (default: --seed)\n"
         "  --fuzz-mutations=N   mutations per corpus entry (default 32)\n"
         "  --list-mutations     print mutation names and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stellar;

  testkit::ExploreOptions options;
  options.cases = 500;
  bool haveCaseSeed = false;
  std::uint64_t caseSeed = 0;
  bool mutateAll = false;
  std::string fuzzCorpusDir;
  bool haveFuzzSeed = false;
  std::uint64_t fuzzSeed = 0;
  int fuzzMutations = 32;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--list-mutations") {
      for (const std::string& name : testkit::mutationNames()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (flagValue(arg, "--cases", value)) {
      options.cases = static_cast<int>(parseU64(value));
    } else if (flagValue(arg, "--seed", value)) {
      options.seed = parseU64(value);
    } else if (flagValue(arg, "--budget-seconds", value)) {
      options.budgetSeconds = std::strtod(std::string(value).c_str(), nullptr);
    } else if (flagValue(arg, "--metamorphic-every", value)) {
      options.metamorphicEvery = static_cast<int>(parseU64(value));
    } else if (arg == "--no-obs") {
      options.checkObs = false;
    } else if (arg == "--no-oracles") {
      options.oracles = false;
    } else if (arg == "--no-shrink") {
      options.shrinkFailures = false;
    } else if (flagValue(arg, "--mutate", value)) {
      if (value == "all") {
        mutateAll = true;
      } else {
        options.mutation = std::string(value);
      }
    } else if (flagValue(arg, "--case-seed", value)) {
      haveCaseSeed = true;
      caseSeed = parseU64(value);
    } else if (flagValue(arg, "--fuzz-corpus", value)) {
      fuzzCorpusDir = std::string(value);
    } else if (flagValue(arg, "--fuzz-seed", value)) {
      haveFuzzSeed = true;
      fuzzSeed = parseU64(value);
    } else if (flagValue(arg, "--fuzz-mutations", value)) {
      fuzzMutations = static_cast<int>(parseU64(value));
    } else {
      std::cerr << "unknown argument: " << arg << "\n\n";
      usage();
      return 2;
    }
  }

  bool ok = true;

  if (haveCaseSeed) {
    // Single-case reproduction: run every per-case checker on that seed.
    const auto violations =
        testkit::checkOneCase(caseSeed, options.mutation, options.checkObs,
                              options.metamorphicEvery > 0);
    std::cout << "case seed 0x" << std::hex << caseSeed << std::dec << ": "
              << (violations.empty() ? "PASS" : "FAIL") << "\n";
    std::cout << "  shape: " << testkit::generateShape(caseSeed).describe() << "\n";
    for (const auto& v : violations) {
      std::cout << "  " << v.format() << "\n";
    }
    return violations.empty() ? 0 : 1;
  }

  if (!fuzzCorpusDir.empty()) {
    const std::uint64_t seed = haveFuzzSeed ? fuzzSeed : options.seed;
    const auto findings =
        testkit::fuzzCorpus(fuzzCorpusDir, seed, fuzzMutations);
    const std::size_t files = testkit::lastCorpusFileCount();
    if (files == 0) {
      std::cerr << "fuzz: no corpus files under " << fuzzCorpusDir
                << " (wrong directory?)\n";
      return 2;
    }
    std::cout << "fuzz: " << files << " corpus files, " << fuzzMutations
              << " mutations each, seed=" << seed << ", " << findings.size()
              << " findings\n";
    for (const auto& f : findings) {
      std::cout << "FUZZ FAIL [" << testkit::fuzzTargetName(f.target)
                << "]: " << f.problem << "\n  input: " << f.input << "\n";
    }
    if (!findings.empty()) {
      ok = false;
    }
  }

  if (mutateAll) {
    // Every mutation must be caught — a missed one means the checker has a
    // blind spot exactly where the mutation corrupted the result.
    for (const std::string& name : testkit::mutationNames()) {
      testkit::ExploreOptions m = options;
      m.mutation = name;
      m.cases = std::min(options.cases, 50);  // acceptance: caught within 50
      m.oracles = false;
      const auto report = testkit::explore(m, std::cout);
      if (report.casesFailed == 0) {
        std::cout << "MUTATION ESCAPED: " << name << " was not caught in "
                  << m.cases << " cases\n";
        ok = false;
      } else {
        std::cout << "mutation caught: " << name << " (case "
                  << report.casesRun - 1 << ")\n";
      }
    }
    return ok ? 0 : 1;
  }

  if (!options.mutation.empty()) {
    const auto report = testkit::explore(options, std::cout);
    if (report.casesFailed == 0) {
      std::cout << "MUTATION ESCAPED: " << options.mutation << "\n";
      return 1;
    }
    std::cout << "mutation caught: " << options.mutation << "\n";
    return ok ? 0 : 1;
  }

  const auto report = testkit::explore(options, std::cout);
  if (!report.allPassed()) {
    ok = false;
  }
  return ok ? 0 : 1;
}

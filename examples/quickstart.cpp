// Quickstart: tune one workload with STELLAR in ~20 lines.
//
//   $ ./quickstart [workload] [scale]
//
// Workloads: IOR_64K, IOR_16M, MDWorkbench_2K, MDWorkbench_8K, IO500,
// AMReX, MACSio_512K, MACSio_16M (default IOR_16M).
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "util/units.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace stellar;

  const std::string workload = argc > 1 ? argv[1] : "IOR_16M";
  workloads::WorkloadOptions options;
  options.ranks = 50;
  options.scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  // 1. Describe the application run (here: a bundled benchmark generator).
  const pfs::JobSpec job = workloads::byName(workload, options);

  // 2. A simulated Lustre-like cluster (5 OSS, 1 MDS, 5 client nodes).
  pfs::PfsSimulator simulator;

  // 3. Run one complete STELLAR tuning run.
  core::StellarOptions stellar;
  stellar.seed = 42;
  core::StellarEngine engine{simulator, stellar};
  const core::TuningRunResult result = engine.tune(job);

  // 4. Inspect the outcome.
  std::printf("workload: %s\n", result.workload.c_str());
  std::printf("default config:  %s\n",
              util::formatSeconds(result.defaultSeconds).c_str());
  std::printf("best config:     %s  (%.2fx speedup, %zu attempts)\n",
              util::formatSeconds(result.bestSeconds).c_str(), result.bestSpeedup(),
              result.attempts.size());
  std::printf("changed knobs:   %s\n",
              result.bestConfig.diffAgainst(pfs::PfsConfig{}).c_str());
  std::printf("stop reason:     %s\n", result.endReason.c_str());

  std::printf("\nper-iteration wall time:\n");
  for (std::size_t i = 0; i < result.iterationSeconds.size(); ++i) {
    std::printf("  iteration %zu: %s%s\n", i,
                util::formatSeconds(result.iterationSeconds[i]).c_str(),
                i == 0 ? " (default)" : "");
  }
  return 0;
}

// IO500-style per-phase reporting: the benchmark's phases are separated by
// barriers, so their durations fall out of the simulator's barrier-release
// times. Compares default vs expert vs a STELLAR-tuned configuration per
// phase — showing *where* a static compromise wins and loses.
#include <cstdio>
#include <vector>

#include "baselines/expert.hpp"
#include "core/engine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace stellar;

  workloads::WorkloadOptions options;
  options.ranks = 50;
  options.scale = 0.08;
  const pfs::JobSpec job = workloads::byName("IO500", options);

  // Phase names in generation order (each ends at one barrier; setup
  // barriers produce near-zero "phases").
  const std::vector<std::string> phaseNames = {
      "ior-easy write", "mdtest-easy create", "ior-hard setup", "ior-hard write",
      "mdtest-hard setup", "mdtest-hard create", "ior-easy read",
      "mdtest-easy stat", "ior-hard read", "mdtest-hard stat+read", "deletes"};

  pfs::PfsSimulator simulator;

  core::StellarOptions stellar;
  stellar.seed = 42;
  stellar.agent.seed = 42;
  core::StellarEngine engine{simulator, stellar};
  const core::TuningRunResult tuned = engine.tune(job);

  const pfs::RunResult defaultRun = simulator.run(job, pfs::PfsConfig{}, 7);
  const pfs::RunResult expertRun =
      simulator.run(job, baselines::expertConfig("IO500"), 7);
  const pfs::RunResult tunedRun = simulator.run(job, tuned.bestConfig, 7);

  const auto phaseDurations = [](const pfs::RunResult& run) {
    std::vector<double> phases;
    double previous = 0.0;
    for (const double t : run.barrierTimes) {
      phases.push_back(t - previous);
      previous = t;
    }
    return phases;
  };
  const auto def = phaseDurations(defaultRun);
  const auto expert = phaseDurations(expertRun);
  const auto stellarPhases = phaseDurations(tunedRun);

  util::Table table{{"phase", "default (s)", "expert (s)", "STELLAR (s)"}};
  for (std::size_t i = 0; i < def.size(); ++i) {
    if (def[i] < 0.005) {
      continue;  // setup barriers
    }
    const std::string name =
        i < phaseNames.size() ? phaseNames[i] : "phase " + std::to_string(i);
    table.addRow({name, util::formatDouble(def[i], 3),
                  i < expert.size() ? util::formatDouble(expert[i], 3) : "",
                  i < stellarPhases.size() ? util::formatDouble(stellarPhases[i], 3)
                                           : ""});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total: default %.3f s, expert %.3f s, STELLAR %.3f s (%zu attempts)\n",
              defaultRun.rawWallSeconds, expertRun.rawWallSeconds,
              tunedRun.rawWallSeconds, tuned.attempts.size());
  return 0;
}

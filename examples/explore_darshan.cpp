// Darshan + dataframe + dfquery walkthrough: run a workload, characterize
// it, and interrogate the resulting tables interactively-style with the
// same query language the Analysis Agent uses.
#include <cstdio>

#include "darshan/recorder.hpp"
#include "dataframe/from_darshan.hpp"
#include "dfquery/eval.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace stellar;

  workloads::WorkloadOptions options;
  options.ranks = 50;
  options.scale = 0.05;
  const pfs::JobSpec job = workloads::byName("IO500", options);

  pfs::PfsSimulator simulator;
  const pfs::RunResult run = simulator.run(job, pfs::PfsConfig{}, 1);

  // Characterize the run the way Darshan would, then load it into tables.
  const darshan::DarshanLog log = darshan::characterize(job, run);
  std::printf("darshan log: %zu records, %.2f s runtime, %u procs\n\n",
              log.records.size(), log.header.runTime, log.header.nprocs);

  const df::DarshanTables tables = df::tablesFromLog(log);
  const dfq::TableSet tableSet{{"posix", &tables.posix}};

  const char* queries[] = {
      "select count(*), sum(POSIX_BYTES_WRITTEN), sum(POSIX_BYTES_READ) from posix",
      "select file, POSIX_BYTES_WRITTEN from posix "
      "order by POSIX_BYTES_WRITTEN desc limit 5",
      "select count(*) from posix where POSIX_FILE_SHARED_RANKS > 1",
      "select POSIX_ACCESS1_ACCESS, sum(POSIX_ACCESS1_COUNT) from posix "
      "group by POSIX_ACCESS1_ACCESS order by sum_POSIX_ACCESS1_COUNT desc limit 6",
      "select sum(POSIX_STATS), sum(POSIX_OPENS), sum(POSIX_UNLINKS) from posix "
      "where contains(file, 'mdt-easy')",
  };
  for (const char* query : queries) {
    std::printf("dfquery> %s\n", query);
    const df::DataFrame result = dfq::runQuery(query, tableSet);
    std::printf("%s\n", result.toText(10).c_str());
  }

  // The serialized log round-trips, for archiving traces.
  const std::string text = log.serialize();
  const darshan::DarshanLog parsed = darshan::DarshanLog::parse(text);
  std::printf("serialized log: %zu bytes, parses back to %zu records\n", text.size(),
              parsed.records.size());
  return 0;
}

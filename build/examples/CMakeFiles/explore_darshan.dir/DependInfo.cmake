
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/explore_darshan.cpp" "examples/CMakeFiles/explore_darshan.dir/explore_darshan.cpp.o" "gcc" "examples/CMakeFiles/explore_darshan.dir/explore_darshan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stellar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agents/CMakeFiles/stellar_agents.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stellar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/stellar_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/stellar_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/stellar_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/dfquery/CMakeFiles/stellar_dfquery.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/stellar_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/darshan/CMakeFiles/stellar_darshan.dir/DependInfo.cmake"
  "/root/repo/build/src/rag/CMakeFiles/stellar_rag.dir/DependInfo.cmake"
  "/root/repo/build/src/manual/CMakeFiles/stellar_manual.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/stellar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/stellar_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

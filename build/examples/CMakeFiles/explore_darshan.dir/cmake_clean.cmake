file(REMOVE_RECURSE
  "CMakeFiles/explore_darshan.dir/explore_darshan.cpp.o"
  "CMakeFiles/explore_darshan.dir/explore_darshan.cpp.o.d"
  "explore_darshan"
  "explore_darshan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

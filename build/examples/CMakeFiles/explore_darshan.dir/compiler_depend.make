# Empty compiler generated dependencies file for explore_darshan.
# This may be replaced when dependencies are built.

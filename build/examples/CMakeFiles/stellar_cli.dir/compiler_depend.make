# Empty compiler generated dependencies file for stellar_cli.
# This may be replaced when dependencies are built.

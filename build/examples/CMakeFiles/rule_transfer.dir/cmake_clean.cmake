file(REMOVE_RECURSE
  "CMakeFiles/rule_transfer.dir/rule_transfer.cpp.o"
  "CMakeFiles/rule_transfer.dir/rule_transfer.cpp.o.d"
  "rule_transfer"
  "rule_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

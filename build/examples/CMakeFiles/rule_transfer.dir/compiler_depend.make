# Empty compiler generated dependencies file for rule_transfer.
# This may be replaced when dependencies are built.

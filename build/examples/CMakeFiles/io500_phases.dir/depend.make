# Empty dependencies file for io500_phases.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/io500_phases.dir/io500_phases.cpp.o"
  "CMakeFiles/io500_phases.dir/io500_phases.cpp.o.d"
  "io500_phases"
  "io500_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io500_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

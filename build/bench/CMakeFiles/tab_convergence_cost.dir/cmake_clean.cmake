file(REMOVE_RECURSE
  "CMakeFiles/tab_convergence_cost.dir/tab_convergence_cost.cpp.o"
  "CMakeFiles/tab_convergence_cost.dir/tab_convergence_cost.cpp.o.d"
  "tab_convergence_cost"
  "tab_convergence_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_convergence_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

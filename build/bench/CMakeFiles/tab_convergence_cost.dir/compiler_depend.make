# Empty compiler generated dependencies file for tab_convergence_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_ruleset_extrapolation.dir/fig7_ruleset_extrapolation.cpp.o"
  "CMakeFiles/fig7_ruleset_extrapolation.dir/fig7_ruleset_extrapolation.cpp.o.d"
  "fig7_ruleset_extrapolation"
  "fig7_ruleset_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ruleset_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

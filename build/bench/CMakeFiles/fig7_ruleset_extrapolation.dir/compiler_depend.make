# Empty compiler generated dependencies file for fig7_ruleset_extrapolation.
# This may be replaced when dependencies are built.

# Empty dependencies file for tab_rag_ablation.
# This may be replaced when dependencies are built.

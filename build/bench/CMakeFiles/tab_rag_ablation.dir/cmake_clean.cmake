file(REMOVE_RECURSE
  "CMakeFiles/tab_rag_ablation.dir/tab_rag_ablation.cpp.o"
  "CMakeFiles/tab_rag_ablation.dir/tab_rag_ablation.cpp.o.d"
  "tab_rag_ablation"
  "tab_rag_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_rag_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig2_hallucination.dir/fig2_hallucination.cpp.o"
  "CMakeFiles/fig2_hallucination.dir/fig2_hallucination.cpp.o.d"
  "fig2_hallucination"
  "fig2_hallucination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hallucination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

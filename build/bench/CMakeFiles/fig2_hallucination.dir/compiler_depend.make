# Empty compiler generated dependencies file for fig2_hallucination.
# This may be replaced when dependencies are built.

# Empty dependencies file for tab_user_scope.
# This may be replaced when dependencies are built.

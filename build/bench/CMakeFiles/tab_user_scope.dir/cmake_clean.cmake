file(REMOVE_RECURSE
  "CMakeFiles/tab_user_scope.dir/tab_user_scope.cpp.o"
  "CMakeFiles/tab_user_scope.dir/tab_user_scope.cpp.o.d"
  "tab_user_scope"
  "tab_user_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_user_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tab_scale_sensitivity.
# This may be replaced when dependencies are built.

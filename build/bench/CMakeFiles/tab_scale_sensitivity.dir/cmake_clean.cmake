file(REMOVE_RECURSE
  "CMakeFiles/tab_scale_sensitivity.dir/tab_scale_sensitivity.cpp.o"
  "CMakeFiles/tab_scale_sensitivity.dir/tab_scale_sensitivity.cpp.o.d"
  "tab_scale_sensitivity"
  "tab_scale_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_scale_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

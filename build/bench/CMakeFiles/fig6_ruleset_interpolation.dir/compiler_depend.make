# Empty compiler generated dependencies file for fig6_ruleset_interpolation.
# This may be replaced when dependencies are built.

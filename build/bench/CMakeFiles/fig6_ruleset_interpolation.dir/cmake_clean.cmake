file(REMOVE_RECURSE
  "CMakeFiles/fig6_ruleset_interpolation.dir/fig6_ruleset_interpolation.cpp.o"
  "CMakeFiles/fig6_ruleset_interpolation.dir/fig6_ruleset_interpolation.cpp.o.d"
  "fig6_ruleset_interpolation"
  "fig6_ruleset_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ruleset_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

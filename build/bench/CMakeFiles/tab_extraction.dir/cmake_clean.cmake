file(REMOVE_RECURSE
  "CMakeFiles/tab_extraction.dir/tab_extraction.cpp.o"
  "CMakeFiles/tab_extraction.dir/tab_extraction.cpp.o.d"
  "tab_extraction"
  "tab_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab_extraction.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_tuning_performance.dir/fig5_tuning_performance.cpp.o"
  "CMakeFiles/fig5_tuning_performance.dir/fig5_tuning_performance.cpp.o.d"
  "fig5_tuning_performance"
  "fig5_tuning_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tuning_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

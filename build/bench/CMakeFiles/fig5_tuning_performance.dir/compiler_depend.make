# Empty compiler generated dependencies file for fig5_tuning_performance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_cost_latency.dir/tab_cost_latency.cpp.o"
  "CMakeFiles/tab_cost_latency.dir/tab_cost_latency.cpp.o.d"
  "tab_cost_latency"
  "tab_cost_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_cost_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

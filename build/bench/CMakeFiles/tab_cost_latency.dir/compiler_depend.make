# Empty compiler generated dependencies file for tab_cost_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stellar_workloads.dir/workloads.cpp.o"
  "CMakeFiles/stellar_workloads.dir/workloads.cpp.o.d"
  "libstellar_workloads.a"
  "libstellar_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

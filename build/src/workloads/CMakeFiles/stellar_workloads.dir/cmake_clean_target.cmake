file(REMOVE_RECURSE
  "libstellar_workloads.a"
)

# Empty dependencies file for stellar_workloads.
# This may be replaced when dependencies are built.

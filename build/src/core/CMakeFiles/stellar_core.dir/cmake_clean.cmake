file(REMOVE_RECURSE
  "CMakeFiles/stellar_core.dir/engine.cpp.o"
  "CMakeFiles/stellar_core.dir/engine.cpp.o.d"
  "CMakeFiles/stellar_core.dir/harness.cpp.o"
  "CMakeFiles/stellar_core.dir/harness.cpp.o.d"
  "CMakeFiles/stellar_core.dir/offline_extractor.cpp.o"
  "CMakeFiles/stellar_core.dir/offline_extractor.cpp.o.d"
  "libstellar_core.a"
  "libstellar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stellar_pfs.dir/client.cpp.o"
  "CMakeFiles/stellar_pfs.dir/client.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/client_cache.cpp.o"
  "CMakeFiles/stellar_pfs.dir/client_cache.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/job.cpp.o"
  "CMakeFiles/stellar_pfs.dir/job.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/layout.cpp.o"
  "CMakeFiles/stellar_pfs.dir/layout.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/mds.cpp.o"
  "CMakeFiles/stellar_pfs.dir/mds.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/ost.cpp.o"
  "CMakeFiles/stellar_pfs.dir/ost.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/params.cpp.o"
  "CMakeFiles/stellar_pfs.dir/params.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/simulator.cpp.o"
  "CMakeFiles/stellar_pfs.dir/simulator.cpp.o.d"
  "CMakeFiles/stellar_pfs.dir/topology.cpp.o"
  "CMakeFiles/stellar_pfs.dir/topology.cpp.o.d"
  "libstellar_pfs.a"
  "libstellar_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/client.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/client.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/client.cpp.o.d"
  "/root/repo/src/pfs/client_cache.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/client_cache.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/client_cache.cpp.o.d"
  "/root/repo/src/pfs/job.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/job.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/job.cpp.o.d"
  "/root/repo/src/pfs/layout.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/layout.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/layout.cpp.o.d"
  "/root/repo/src/pfs/mds.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/mds.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/mds.cpp.o.d"
  "/root/repo/src/pfs/ost.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/ost.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/ost.cpp.o.d"
  "/root/repo/src/pfs/params.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/params.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/params.cpp.o.d"
  "/root/repo/src/pfs/simulator.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/simulator.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/simulator.cpp.o.d"
  "/root/repo/src/pfs/topology.cpp" "src/pfs/CMakeFiles/stellar_pfs.dir/topology.cpp.o" "gcc" "src/pfs/CMakeFiles/stellar_pfs.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

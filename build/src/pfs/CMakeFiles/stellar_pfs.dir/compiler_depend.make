# Empty compiler generated dependencies file for stellar_pfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstellar_pfs.a"
)

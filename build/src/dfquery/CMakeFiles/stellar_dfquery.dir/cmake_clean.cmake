file(REMOVE_RECURSE
  "CMakeFiles/stellar_dfquery.dir/eval.cpp.o"
  "CMakeFiles/stellar_dfquery.dir/eval.cpp.o.d"
  "CMakeFiles/stellar_dfquery.dir/lexer.cpp.o"
  "CMakeFiles/stellar_dfquery.dir/lexer.cpp.o.d"
  "CMakeFiles/stellar_dfquery.dir/parser.cpp.o"
  "CMakeFiles/stellar_dfquery.dir/parser.cpp.o.d"
  "libstellar_dfquery.a"
  "libstellar_dfquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_dfquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

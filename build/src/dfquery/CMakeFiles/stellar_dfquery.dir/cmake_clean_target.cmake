file(REMOVE_RECURSE
  "libstellar_dfquery.a"
)

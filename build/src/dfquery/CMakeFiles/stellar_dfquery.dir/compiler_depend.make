# Empty compiler generated dependencies file for stellar_dfquery.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/dfquery
# Build directory: /root/repo/build/src/dfquery
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

file(REMOVE_RECURSE
  "libstellar_rules.a"
)

# Empty dependencies file for stellar_rules.
# This may be replaced when dependencies are built.

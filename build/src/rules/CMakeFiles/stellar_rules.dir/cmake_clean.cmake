file(REMOVE_RECURSE
  "CMakeFiles/stellar_rules.dir/rules.cpp.o"
  "CMakeFiles/stellar_rules.dir/rules.cpp.o.d"
  "libstellar_rules.a"
  "libstellar_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstellar_darshan.a"
)

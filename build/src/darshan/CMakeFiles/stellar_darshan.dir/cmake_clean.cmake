file(REMOVE_RECURSE
  "CMakeFiles/stellar_darshan.dir/log.cpp.o"
  "CMakeFiles/stellar_darshan.dir/log.cpp.o.d"
  "CMakeFiles/stellar_darshan.dir/recorder.cpp.o"
  "CMakeFiles/stellar_darshan.dir/recorder.cpp.o.d"
  "CMakeFiles/stellar_darshan.dir/recorder_log.cpp.o"
  "CMakeFiles/stellar_darshan.dir/recorder_log.cpp.o.d"
  "libstellar_darshan.a"
  "libstellar_darshan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stellar_darshan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stellar_dataframe.dir/dataframe.cpp.o"
  "CMakeFiles/stellar_dataframe.dir/dataframe.cpp.o.d"
  "CMakeFiles/stellar_dataframe.dir/from_darshan.cpp.o"
  "CMakeFiles/stellar_dataframe.dir/from_darshan.cpp.o.d"
  "libstellar_dataframe.a"
  "libstellar_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

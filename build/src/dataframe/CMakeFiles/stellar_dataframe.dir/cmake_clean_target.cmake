file(REMOVE_RECURSE
  "libstellar_dataframe.a"
)

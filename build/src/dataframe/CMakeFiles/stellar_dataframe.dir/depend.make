# Empty dependencies file for stellar_dataframe.
# This may be replaced when dependencies are built.

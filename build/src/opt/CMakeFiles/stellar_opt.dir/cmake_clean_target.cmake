file(REMOVE_RECURSE
  "libstellar_opt.a"
)

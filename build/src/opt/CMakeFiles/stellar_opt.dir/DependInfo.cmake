
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/gp_bayesopt.cpp" "src/opt/CMakeFiles/stellar_opt.dir/gp_bayesopt.cpp.o" "gcc" "src/opt/CMakeFiles/stellar_opt.dir/gp_bayesopt.cpp.o.d"
  "/root/repo/src/opt/linalg.cpp" "src/opt/CMakeFiles/stellar_opt.dir/linalg.cpp.o" "gcc" "src/opt/CMakeFiles/stellar_opt.dir/linalg.cpp.o.d"
  "/root/repo/src/opt/optimizers.cpp" "src/opt/CMakeFiles/stellar_opt.dir/optimizers.cpp.o" "gcc" "src/opt/CMakeFiles/stellar_opt.dir/optimizers.cpp.o.d"
  "/root/repo/src/opt/search_space.cpp" "src/opt/CMakeFiles/stellar_opt.dir/search_space.cpp.o" "gcc" "src/opt/CMakeFiles/stellar_opt.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/stellar_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

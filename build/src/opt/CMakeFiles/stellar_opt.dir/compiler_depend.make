# Empty compiler generated dependencies file for stellar_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stellar_opt.dir/gp_bayesopt.cpp.o"
  "CMakeFiles/stellar_opt.dir/gp_bayesopt.cpp.o.d"
  "CMakeFiles/stellar_opt.dir/linalg.cpp.o"
  "CMakeFiles/stellar_opt.dir/linalg.cpp.o.d"
  "CMakeFiles/stellar_opt.dir/optimizers.cpp.o"
  "CMakeFiles/stellar_opt.dir/optimizers.cpp.o.d"
  "CMakeFiles/stellar_opt.dir/search_space.cpp.o"
  "CMakeFiles/stellar_opt.dir/search_space.cpp.o.d"
  "libstellar_opt.a"
  "libstellar_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

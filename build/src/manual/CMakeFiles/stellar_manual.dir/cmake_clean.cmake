file(REMOVE_RECURSE
  "CMakeFiles/stellar_manual.dir/manual_text.cpp.o"
  "CMakeFiles/stellar_manual.dir/manual_text.cpp.o.d"
  "CMakeFiles/stellar_manual.dir/param_facts.cpp.o"
  "CMakeFiles/stellar_manual.dir/param_facts.cpp.o.d"
  "libstellar_manual.a"
  "libstellar_manual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_manual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstellar_manual.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/manual/manual_text.cpp" "src/manual/CMakeFiles/stellar_manual.dir/manual_text.cpp.o" "gcc" "src/manual/CMakeFiles/stellar_manual.dir/manual_text.cpp.o.d"
  "/root/repo/src/manual/param_facts.cpp" "src/manual/CMakeFiles/stellar_manual.dir/param_facts.cpp.o" "gcc" "src/manual/CMakeFiles/stellar_manual.dir/param_facts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/stellar_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for stellar_manual.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/expert.cpp" "src/baselines/CMakeFiles/stellar_baselines.dir/expert.cpp.o" "gcc" "src/baselines/CMakeFiles/stellar_baselines.dir/expert.cpp.o.d"
  "/root/repo/src/baselines/oracle.cpp" "src/baselines/CMakeFiles/stellar_baselines.dir/oracle.cpp.o" "gcc" "src/baselines/CMakeFiles/stellar_baselines.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pfs/CMakeFiles/stellar_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/stellar_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/stellar_baselines.dir/expert.cpp.o"
  "CMakeFiles/stellar_baselines.dir/expert.cpp.o.d"
  "CMakeFiles/stellar_baselines.dir/oracle.cpp.o"
  "CMakeFiles/stellar_baselines.dir/oracle.cpp.o.d"
  "libstellar_baselines.a"
  "libstellar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

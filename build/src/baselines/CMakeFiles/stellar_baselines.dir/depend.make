# Empty dependencies file for stellar_baselines.
# This may be replaced when dependencies are built.

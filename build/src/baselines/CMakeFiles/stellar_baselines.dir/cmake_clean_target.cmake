file(REMOVE_RECURSE
  "libstellar_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stellar_rag.dir/chunker.cpp.o"
  "CMakeFiles/stellar_rag.dir/chunker.cpp.o.d"
  "CMakeFiles/stellar_rag.dir/embedder.cpp.o"
  "CMakeFiles/stellar_rag.dir/embedder.cpp.o.d"
  "CMakeFiles/stellar_rag.dir/tokenizer.cpp.o"
  "CMakeFiles/stellar_rag.dir/tokenizer.cpp.o.d"
  "CMakeFiles/stellar_rag.dir/vector_index.cpp.o"
  "CMakeFiles/stellar_rag.dir/vector_index.cpp.o.d"
  "libstellar_rag.a"
  "libstellar_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

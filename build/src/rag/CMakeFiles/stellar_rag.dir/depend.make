# Empty dependencies file for stellar_rag.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstellar_rag.a"
)

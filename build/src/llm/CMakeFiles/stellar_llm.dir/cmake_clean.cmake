file(REMOVE_RECURSE
  "CMakeFiles/stellar_llm.dir/knowledge.cpp.o"
  "CMakeFiles/stellar_llm.dir/knowledge.cpp.o.d"
  "CMakeFiles/stellar_llm.dir/model_profile.cpp.o"
  "CMakeFiles/stellar_llm.dir/model_profile.cpp.o.d"
  "CMakeFiles/stellar_llm.dir/token_meter.cpp.o"
  "CMakeFiles/stellar_llm.dir/token_meter.cpp.o.d"
  "libstellar_llm.a"
  "libstellar_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/knowledge.cpp" "src/llm/CMakeFiles/stellar_llm.dir/knowledge.cpp.o" "gcc" "src/llm/CMakeFiles/stellar_llm.dir/knowledge.cpp.o.d"
  "/root/repo/src/llm/model_profile.cpp" "src/llm/CMakeFiles/stellar_llm.dir/model_profile.cpp.o" "gcc" "src/llm/CMakeFiles/stellar_llm.dir/model_profile.cpp.o.d"
  "/root/repo/src/llm/token_meter.cpp" "src/llm/CMakeFiles/stellar_llm.dir/token_meter.cpp.o" "gcc" "src/llm/CMakeFiles/stellar_llm.dir/token_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/manual/CMakeFiles/stellar_manual.dir/DependInfo.cmake"
  "/root/repo/build/src/rag/CMakeFiles/stellar_rag.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/stellar_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for stellar_llm.
# This may be replaced when dependencies are built.

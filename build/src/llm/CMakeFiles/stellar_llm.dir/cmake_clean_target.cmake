file(REMOVE_RECURSE
  "libstellar_llm.a"
)

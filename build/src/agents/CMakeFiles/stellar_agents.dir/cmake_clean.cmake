file(REMOVE_RECURSE
  "CMakeFiles/stellar_agents.dir/analysis_agent.cpp.o"
  "CMakeFiles/stellar_agents.dir/analysis_agent.cpp.o.d"
  "CMakeFiles/stellar_agents.dir/transcript.cpp.o"
  "CMakeFiles/stellar_agents.dir/transcript.cpp.o.d"
  "CMakeFiles/stellar_agents.dir/tuning_agent.cpp.o"
  "CMakeFiles/stellar_agents.dir/tuning_agent.cpp.o.d"
  "libstellar_agents.a"
  "libstellar_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stellar_agents.
# This may be replaced when dependencies are built.

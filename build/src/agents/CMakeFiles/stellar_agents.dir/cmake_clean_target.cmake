file(REMOVE_RECURSE
  "libstellar_agents.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stellar_util.dir/expr.cpp.o"
  "CMakeFiles/stellar_util.dir/expr.cpp.o.d"
  "CMakeFiles/stellar_util.dir/file.cpp.o"
  "CMakeFiles/stellar_util.dir/file.cpp.o.d"
  "CMakeFiles/stellar_util.dir/json.cpp.o"
  "CMakeFiles/stellar_util.dir/json.cpp.o.d"
  "CMakeFiles/stellar_util.dir/log.cpp.o"
  "CMakeFiles/stellar_util.dir/log.cpp.o.d"
  "CMakeFiles/stellar_util.dir/rng.cpp.o"
  "CMakeFiles/stellar_util.dir/rng.cpp.o.d"
  "CMakeFiles/stellar_util.dir/stats.cpp.o"
  "CMakeFiles/stellar_util.dir/stats.cpp.o.d"
  "CMakeFiles/stellar_util.dir/strings.cpp.o"
  "CMakeFiles/stellar_util.dir/strings.cpp.o.d"
  "CMakeFiles/stellar_util.dir/table.cpp.o"
  "CMakeFiles/stellar_util.dir/table.cpp.o.d"
  "CMakeFiles/stellar_util.dir/thread_pool.cpp.o"
  "CMakeFiles/stellar_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/stellar_util.dir/units.cpp.o"
  "CMakeFiles/stellar_util.dir/units.cpp.o.d"
  "libstellar_util.a"
  "libstellar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stellar_sim.dir/engine.cpp.o"
  "CMakeFiles/stellar_sim.dir/engine.cpp.o.d"
  "CMakeFiles/stellar_sim.dir/flow_limiter.cpp.o"
  "CMakeFiles/stellar_sim.dir/flow_limiter.cpp.o.d"
  "CMakeFiles/stellar_sim.dir/service_center.cpp.o"
  "CMakeFiles/stellar_sim.dir/service_center.cpp.o.d"
  "libstellar_sim.a"
  "libstellar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stellar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

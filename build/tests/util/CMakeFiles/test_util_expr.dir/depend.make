# Empty dependencies file for test_util_expr.
# This may be replaced when dependencies are built.

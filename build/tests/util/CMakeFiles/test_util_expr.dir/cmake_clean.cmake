file(REMOVE_RECURSE
  "CMakeFiles/test_util_expr.dir/test_expr.cpp.o"
  "CMakeFiles/test_util_expr.dir/test_expr.cpp.o.d"
  "test_util_expr"
  "test_util_expr.pdb"
  "test_util_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

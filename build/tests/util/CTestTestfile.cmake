# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util/test_util_rng[1]_include.cmake")
include("/root/repo/build/tests/util/test_util_stats[1]_include.cmake")
include("/root/repo/build/tests/util/test_util_strings[1]_include.cmake")
include("/root/repo/build/tests/util/test_util_json[1]_include.cmake")
include("/root/repo/build/tests/util/test_util_expr[1]_include.cmake")
include("/root/repo/build/tests/util/test_util_misc[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/test_recorder_log.dir/test_recorder_log.cpp.o"
  "CMakeFiles/test_recorder_log.dir/test_recorder_log.cpp.o.d"
  "test_recorder_log"
  "test_recorder_log.pdb"
  "test_recorder_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recorder_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_recorder_log.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests/darshan
# Build directory: /root/repo/build/tests/darshan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/darshan/test_darshan[1]_include.cmake")
include("/root/repo/build/tests/darshan/test_recorder_log[1]_include.cmake")

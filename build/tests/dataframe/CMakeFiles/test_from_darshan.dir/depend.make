# Empty dependencies file for test_from_darshan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_from_darshan.dir/test_from_darshan.cpp.o"
  "CMakeFiles/test_from_darshan.dir/test_from_darshan.cpp.o.d"
  "test_from_darshan"
  "test_from_darshan.pdb"
  "test_from_darshan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_from_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/dataframe
# Build directory: /root/repo/build/tests/dataframe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dataframe/test_dataframe[1]_include.cmake")
include("/root/repo/build/tests/dataframe/test_from_darshan[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/tests/llm
# Build directory: /root/repo/build/tests/llm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/llm/test_llm[1]_include.cmake")

# Empty dependencies file for test_opt_linalg.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_opt_optimizers.
# This may be replaced when dependencies are built.

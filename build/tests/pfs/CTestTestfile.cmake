# CMake generated Testfile for 
# Source directory: /root/repo/tests/pfs
# Build directory: /root/repo/build/tests/pfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pfs/test_pfs_layout[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_params[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_caches[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_simulator[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_response_surface[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_properties[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_client_semantics[1]_include.cmake")
include("/root/repo/build/tests/pfs/test_pfs_ost_mds[1]_include.cmake")

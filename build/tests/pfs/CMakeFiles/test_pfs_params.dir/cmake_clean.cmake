file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_params.dir/test_params.cpp.o"
  "CMakeFiles/test_pfs_params.dir/test_params.cpp.o.d"
  "test_pfs_params"
  "test_pfs_params.pdb"
  "test_pfs_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

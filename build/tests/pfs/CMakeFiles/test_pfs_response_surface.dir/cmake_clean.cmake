file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_response_surface.dir/test_response_surface.cpp.o"
  "CMakeFiles/test_pfs_response_surface.dir/test_response_surface.cpp.o.d"
  "test_pfs_response_surface"
  "test_pfs_response_surface.pdb"
  "test_pfs_response_surface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_response_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_simulator.dir/test_simulator.cpp.o"
  "CMakeFiles/test_pfs_simulator.dir/test_simulator.cpp.o.d"
  "test_pfs_simulator"
  "test_pfs_simulator.pdb"
  "test_pfs_simulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

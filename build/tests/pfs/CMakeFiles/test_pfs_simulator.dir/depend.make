# Empty dependencies file for test_pfs_simulator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_caches.dir/test_caches.cpp.o"
  "CMakeFiles/test_pfs_caches.dir/test_caches.cpp.o.d"
  "test_pfs_caches"
  "test_pfs_caches.pdb"
  "test_pfs_caches[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

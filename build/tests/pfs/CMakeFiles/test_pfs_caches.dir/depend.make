# Empty dependencies file for test_pfs_caches.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_ost_mds.dir/test_ost_mds.cpp.o"
  "CMakeFiles/test_pfs_ost_mds.dir/test_ost_mds.cpp.o.d"
  "test_pfs_ost_mds"
  "test_pfs_ost_mds.pdb"
  "test_pfs_ost_mds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_ost_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

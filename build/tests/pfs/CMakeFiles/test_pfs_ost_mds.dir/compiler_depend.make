# Empty compiler generated dependencies file for test_pfs_ost_mds.
# This may be replaced when dependencies are built.

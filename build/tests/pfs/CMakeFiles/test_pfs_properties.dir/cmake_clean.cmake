file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_properties.dir/test_properties.cpp.o"
  "CMakeFiles/test_pfs_properties.dir/test_properties.cpp.o.d"
  "test_pfs_properties"
  "test_pfs_properties.pdb"
  "test_pfs_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

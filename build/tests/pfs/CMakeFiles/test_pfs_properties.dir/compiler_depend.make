# Empty compiler generated dependencies file for test_pfs_properties.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_pfs_client_semantics.
# This may be replaced when dependencies are built.

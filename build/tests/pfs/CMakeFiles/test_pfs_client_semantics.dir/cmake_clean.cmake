file(REMOVE_RECURSE
  "CMakeFiles/test_pfs_client_semantics.dir/test_client_semantics.cpp.o"
  "CMakeFiles/test_pfs_client_semantics.dir/test_client_semantics.cpp.o.d"
  "test_pfs_client_semantics"
  "test_pfs_client_semantics.pdb"
  "test_pfs_client_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pfs_client_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

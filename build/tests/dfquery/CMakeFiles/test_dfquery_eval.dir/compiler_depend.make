# Empty compiler generated dependencies file for test_dfquery_eval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dfquery_eval.dir/test_eval.cpp.o"
  "CMakeFiles/test_dfquery_eval.dir/test_eval.cpp.o.d"
  "test_dfquery_eval"
  "test_dfquery_eval.pdb"
  "test_dfquery_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfquery_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

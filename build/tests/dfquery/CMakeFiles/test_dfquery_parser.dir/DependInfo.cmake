
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dfquery/test_parser.cpp" "tests/dfquery/CMakeFiles/test_dfquery_parser.dir/test_parser.cpp.o" "gcc" "tests/dfquery/CMakeFiles/test_dfquery_parser.dir/test_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfquery/CMakeFiles/stellar_dfquery.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/stellar_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/darshan/CMakeFiles/stellar_darshan.dir/DependInfo.cmake"
  "/root/repo/build/src/pfs/CMakeFiles/stellar_pfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stellar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stellar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_dfquery_parser.
# This may be replaced when dependencies are built.

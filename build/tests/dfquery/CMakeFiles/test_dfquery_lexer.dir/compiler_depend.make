# Empty compiler generated dependencies file for test_dfquery_lexer.
# This may be replaced when dependencies are built.

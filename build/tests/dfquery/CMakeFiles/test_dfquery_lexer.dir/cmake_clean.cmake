file(REMOVE_RECURSE
  "CMakeFiles/test_dfquery_lexer.dir/test_lexer.cpp.o"
  "CMakeFiles/test_dfquery_lexer.dir/test_lexer.cpp.o.d"
  "test_dfquery_lexer"
  "test_dfquery_lexer.pdb"
  "test_dfquery_lexer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfquery_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/dfquery
# Build directory: /root/repo/build/tests/dfquery
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dfquery/test_dfquery_lexer[1]_include.cmake")
include("/root/repo/build/tests/dfquery/test_dfquery_parser[1]_include.cmake")
include("/root/repo/build/tests/dfquery/test_dfquery_eval[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/tests/agents
# Build directory: /root/repo/build/tests/agents
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/agents/test_analysis_agent[1]_include.cmake")
include("/root/repo/build/tests/agents/test_tuning_agent[1]_include.cmake")
include("/root/repo/build/tests/agents/test_misguided_moves[1]_include.cmake")

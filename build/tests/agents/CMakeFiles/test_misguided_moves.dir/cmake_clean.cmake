file(REMOVE_RECURSE
  "CMakeFiles/test_misguided_moves.dir/test_misguided_moves.cpp.o"
  "CMakeFiles/test_misguided_moves.dir/test_misguided_moves.cpp.o.d"
  "test_misguided_moves"
  "test_misguided_moves.pdb"
  "test_misguided_moves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misguided_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_tuning_agent.dir/test_tuning_agent.cpp.o"
  "CMakeFiles/test_tuning_agent.dir/test_tuning_agent.cpp.o.d"
  "test_tuning_agent"
  "test_tuning_agent.pdb"
  "test_tuning_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuning_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

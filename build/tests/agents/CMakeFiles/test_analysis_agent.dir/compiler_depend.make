# Empty compiler generated dependencies file for test_analysis_agent.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_agent.dir/test_analysis_agent.cpp.o"
  "CMakeFiles/test_analysis_agent.dir/test_analysis_agent.cpp.o.d"
  "test_analysis_agent"
  "test_analysis_agent.pdb"
  "test_analysis_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_scope.
# This may be replaced when dependencies are built.

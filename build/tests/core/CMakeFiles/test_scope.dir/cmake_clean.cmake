file(REMOVE_RECURSE
  "CMakeFiles/test_scope.dir/test_scope.cpp.o"
  "CMakeFiles/test_scope.dir/test_scope.cpp.o.d"
  "test_scope"
  "test_scope.pdb"
  "test_scope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_offline_extractor.
# This may be replaced when dependencies are built.

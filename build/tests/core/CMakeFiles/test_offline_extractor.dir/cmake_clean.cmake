file(REMOVE_RECURSE
  "CMakeFiles/test_offline_extractor.dir/test_offline_extractor.cpp.o"
  "CMakeFiles/test_offline_extractor.dir/test_offline_extractor.cpp.o.d"
  "test_offline_extractor"
  "test_offline_extractor.pdb"
  "test_offline_extractor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

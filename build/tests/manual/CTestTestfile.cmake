# CMake generated Testfile for 
# Source directory: /root/repo/tests/manual
# Build directory: /root/repo/build/tests/manual
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/manual/test_manual[1]_include.cmake")

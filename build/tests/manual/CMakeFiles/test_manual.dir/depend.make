# Empty dependencies file for test_manual.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_manual.dir/test_manual.cpp.o"
  "CMakeFiles/test_manual.dir/test_manual.cpp.o.d"
  "test_manual"
  "test_manual.pdb"
  "test_manual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

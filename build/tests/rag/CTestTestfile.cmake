# CMake generated Testfile for 
# Source directory: /root/repo/tests/rag
# Build directory: /root/repo/build/tests/rag
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rag/test_rag[1]_include.cmake")

# Empty compiler generated dependencies file for test_sim_service_center.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sim_service_center.dir/test_service_center.cpp.o"
  "CMakeFiles/test_sim_service_center.dir/test_service_center.cpp.o.d"
  "test_sim_service_center"
  "test_sim_service_center.pdb"
  "test_sim_service_center[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_service_center.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

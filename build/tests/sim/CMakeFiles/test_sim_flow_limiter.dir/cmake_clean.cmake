file(REMOVE_RECURSE
  "CMakeFiles/test_sim_flow_limiter.dir/test_flow_limiter.cpp.o"
  "CMakeFiles/test_sim_flow_limiter.dir/test_flow_limiter.cpp.o.d"
  "test_sim_flow_limiter"
  "test_sim_flow_limiter.pdb"
  "test_sim_flow_limiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_flow_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

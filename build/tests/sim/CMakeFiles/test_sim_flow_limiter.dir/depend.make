# Empty dependencies file for test_sim_flow_limiter.
# This may be replaced when dependencies are built.
